/**
 * @file
 * fleetio_lint against the seeded fixture tree under
 * tests/lint_fixtures/: every rule R1-R8 is proven live by a fixture
 * that trips it, a clean file stays clean, and the suppression
 * machinery both silences reasoned allows and flags reason-less ones.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/fleetio_lint/lint.h"

namespace fleetio::lint {
namespace {

std::string
fixturesRoot()
{
    return FLEETIO_LINT_FIXTURES;
}

Result
runRule(const std::string &rule)
{
    Options opts;
    opts.rules = {rule};
    return runLint(fixturesRoot(), opts);
}

/** Violations of @p rule whose file contains @p file_part. */
std::vector<Violation>
inFile(const Result &r, const std::string &rule,
       const std::string &file_part)
{
    std::vector<Violation> out;
    for (const Violation &v : r.violations) {
        if (v.rule == rule &&
            v.file.find(file_part) != std::string::npos)
            out.push_back(v);
    }
    return out;
}

TEST(LintRegistry, ExposesAllRulesWithIssueTags)
{
    const auto &rs = rules();
    ASSERT_GE(rs.size(), 8u);
    std::vector<std::string> ids;
    for (const RuleInfo &r : rs)
        ids.push_back(r.id);
    for (const char *want :
         {"nondeterminism", "hotpath", "trace-macro", "layering",
          "header-hygiene", "build-registration", "journal-api",
          "attr-macro"}) {
        EXPECT_NE(std::find(ids.begin(), ids.end(), want), ids.end())
            << "missing rule " << want;
    }
}

TEST(LintFixtures, FullRunFlagsEveryRule)
{
    const Result r = runLint(fixturesRoot());
    EXPECT_FALSE(r.clean());
    EXPECT_EQ(r.files_scanned, 13u);
    EXPECT_EQ(r.suppressions_used, 2u);
    for (const char *rule :
         {"nondeterminism", "hotpath", "trace-macro", "layering",
          "header-hygiene", "build-registration", "journal-api",
          "attr-macro", "suppression"}) {
        const bool found = std::any_of(
            r.violations.begin(), r.violations.end(),
            [&](const Violation &v) { return v.rule == rule; });
        EXPECT_TRUE(found) << "no fixture tripped rule " << rule;
    }
}

TEST(LintFixtures, R1NondeterminismFlagsClockAndRand)
{
    const Result r = runRule("nondeterminism");
    const auto hits = inFile(r, "nondeterminism", "nondet_bad.cc");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].line, 10);  // system_clock
    EXPECT_EQ(hits[1].line, 16);  // rand()
}

TEST(LintFixtures, R2HotpathFlagsFunctionIostreamStoi)
{
    const Result r = runRule("hotpath");
    const auto hits = inFile(r, "hotpath", "hotpath_bad.cc");
    EXPECT_EQ(hits.size(), 4u);
    // Everything hotpath flags lives in that one fixture.
    EXPECT_EQ(inFile(r, "hotpath", "").size(), hits.size());
}

TEST(LintFixtures, R3TraceMacroFlagsRawEmit)
{
    const Result r = runRule("trace-macro");
    const auto hits = inFile(r, "trace-macro", "trace_bad.cc");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 12);
    EXPECT_NE(hits[0].message.find("FLEETIO_TRACE_EVENT"),
              std::string::npos);
}

TEST(LintFixtures, R4LayeringFlagsSimIncludingRl)
{
    const Result r = runRule("layering");
    const auto hits = inFile(r, "layering", "layering_bad.h");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("src/rl/agent_stub.h"),
              std::string::npos);
}

TEST(LintFixtures, R4LayeringFlagsVirtIncludingControlPlane)
{
    const Result r = runRule("layering");
    const auto hits = inFile(r, "layering", "controlplane_bad.h");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("src/core/tenant_admission.h"),
              std::string::npos);
    EXPECT_NE(hits[0].message.find("control plane"),
              std::string::npos);
}

TEST(LintFixtures, R5HeaderHygieneFlagsGuardAndUsingNamespace)
{
    const Result r = runRule("header-hygiene");
    const auto hits = inFile(r, "header-hygiene", "header_bad.h");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_NE(hits[0].message.find("#pragma once"), std::string::npos);
    EXPECT_NE(hits[1].message.find("using namespace"),
              std::string::npos);
}

TEST(LintFixtures, R6BuildRegistrationFlagsOrphanOnly)
{
    const Result r = runRule("build-registration");
    EXPECT_EQ(inFile(r, "build-registration", "unregistered.cc").size(),
              1u);
    EXPECT_TRUE(inFile(r, "build-registration", "/registered.cc")
                    .empty());
    EXPECT_TRUE(
        inFile(r, "build-registration", "nondet_bad.cc").empty());
}

TEST(LintFixtures, R7JournalApiFlagsDirectMutationAndHonorsAllow)
{
    const Result r = runRule("journal-api");
    // The direct eraseBlock fires; the reasoned allow silences the
    // retireBlock two lines below it.
    const auto hits = inFile(r, "journal-api", "journal_bad.cc");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 9);
    EXPECT_NE(hits[0].message.find("durable"), std::string::npos);
    EXPECT_GE(r.suppressions_used, 1u);
}

TEST(LintFixtures, R8AttrMacroFlagsRawEmit)
{
    const Result r = runRule("attr-macro");
    const auto hits = inFile(r, "attr-macro", "attr_bad.cc");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 12);
    EXPECT_NE(hits[0].message.find("FLEETIO_ATTR_EVENT"),
              std::string::npos);
}

TEST(LintFixtures, ReasonedSuppressionSilencesButReasonlessFires)
{
    const Result r = runRule("nondeterminism");
    // suppressed_ok.cc: rand() behind a reasoned multi-line allow.
    EXPECT_TRUE(inFile(r, "nondeterminism", "suppressed_ok.cc").empty());
    EXPECT_GE(r.suppressions_used, 1u);
    // suppressed_bad.cc: allow without a reason does not silence...
    EXPECT_EQ(inFile(r, "nondeterminism", "suppressed_bad.cc").size(),
              1u);
    // ...and is itself reported (suppression hygiene always runs).
    EXPECT_EQ(inFile(r, "suppression", "suppressed_bad.cc").size(), 1u);
}

TEST(LintFixtures, CleanFileStaysClean)
{
    const Result r = runLint(fixturesRoot());
    for (const Violation &v : r.violations)
        EXPECT_EQ(v.file.find("/registered.cc"), std::string::npos)
            << v.file << " flagged by " << v.rule;
}

TEST(FixHeaderGuard, ConvertsClassicGuard)
{
    std::string text =
        "// comment\n"
        "#ifndef FOO_BAR_H\n"
        "#define FOO_BAR_H\n"
        "\n"
        "int x;\n"
        "\n"
        "#endif  // FOO_BAR_H\n";
    ASSERT_TRUE(fixHeaderGuard(text));
    EXPECT_NE(text.find("#pragma once"), std::string::npos);
    EXPECT_EQ(text.find("#ifndef"), std::string::npos);
    EXPECT_EQ(text.find("#endif"), std::string::npos);
    EXPECT_NE(text.find("int x;"), std::string::npos);
}

TEST(FixHeaderGuard, LeavesPragmaOnceAndGuardlessFilesAlone)
{
    std::string pragma_text = "#pragma once\nint x;\n";
    EXPECT_FALSE(fixHeaderGuard(pragma_text));
    std::string no_guard = "int x;\n";
    EXPECT_FALSE(fixHeaderGuard(no_guard));
    // Conditional compilation is not an include guard.
    std::string cond =
        "#ifndef NDEBUG\n#define CHECKS 1\n#endif\nint x;\n";
    EXPECT_FALSE(fixHeaderGuard(cond));
}

TEST(FixHeaderGuard, KeepsNestedConditionalsInsideGuard)
{
    std::string text =
        "#ifndef G_H\n"
        "#define G_H\n"
        "#ifdef FAST\n"
        "int y;\n"
        "#endif\n"
        "#endif\n";
    ASSERT_TRUE(fixHeaderGuard(text));
    EXPECT_NE(text.find("#ifdef FAST"), std::string::npos);
    EXPECT_NE(text.find("#endif"), std::string::npos);
    EXPECT_EQ(text.find("G_H"), std::string::npos);
}

}  // namespace
}  // namespace fleetio::lint
