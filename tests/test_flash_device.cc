/** @file Unit tests for device timing, allocation and accounting. */
#include <gtest/gtest.h>

#include "src/ssd/flash_device.h"

namespace fleetio {
namespace {

class FlashDeviceTest : public ::testing::Test
{
  protected:
    FlashDeviceTest() : dev_(testGeometry(), eq_) {}
    EventQueue eq_;
    FlashDevice dev_;
};

TEST_F(FlashDeviceTest, ReadTimingIsChipThenBus)
{
    const auto &geo = dev_.geometry();
    ChipId chip;
    BlockId blk;
    ASSERT_TRUE(dev_.allocateBlock(0, 0, chip, blk));
    const PageId pg = dev_.chip(0, chip).programNextPage(blk);
    const Ppa ppa = geo.makePpa(0, chip, blk, pg);

    bool done = false;
    const SimTime complete = dev_.issueRead(ppa, [&] { done = true; });
    EXPECT_EQ(complete, geo.read_latency + geo.pageTransferTime());
    EXPECT_FALSE(done);
    eq_.runAll();
    EXPECT_TRUE(done);
    EXPECT_EQ(dev_.hostReads(), 1u);
}

TEST_F(FlashDeviceTest, ProgramTimingIsBusThenChip)
{
    const auto &geo = dev_.geometry();
    ChipId chip;
    BlockId blk;
    ASSERT_TRUE(dev_.allocateBlock(0, 0, chip, blk));
    const PageId pg = dev_.chip(0, chip).programNextPage(blk);
    const Ppa ppa = geo.makePpa(0, chip, blk, pg);

    const SimTime complete = dev_.issueProgram(ppa, nullptr);
    EXPECT_EQ(complete, geo.pageTransferTime() + geo.program_latency);
    EXPECT_EQ(dev_.hostWrites(), 1u);
}

TEST_F(FlashDeviceTest, BusSerializesSameChannelTransfers)
{
    const auto &geo = dev_.geometry();
    // Two reads from different chips on the same channel: chip reads
    // overlap, bus transfers serialize.
    ChipId c0, c1;
    BlockId b0, b1;
    ASSERT_TRUE(dev_.allocateBlock(0, 0, c0, b0));
    dev_.chip(0, c0).programNextPage(b0);
    ASSERT_TRUE(dev_.allocateBlock(0, 0, c1, b1));
    dev_.chip(0, c1).programNextPage(b1);
    const Ppa p0 = geo.makePpa(0, c0, b0, 0);
    const Ppa p1 = geo.makePpa(0, c1, b1, 0);

    const SimTime t0 = dev_.issueRead(p0, nullptr);
    const SimTime t1 = dev_.issueRead(p1, nullptr);
    EXPECT_EQ(t0, geo.read_latency + geo.pageTransferTime());
    if (c0 != c1) {
        // Second transfer queues behind the first on the bus.
        EXPECT_EQ(t1, t0 + geo.pageTransferTime());
    }
}

TEST_F(FlashDeviceTest, DifferentChannelsProceedInParallel)
{
    const auto &geo = dev_.geometry();
    ChipId c0, c1;
    BlockId b0, b1;
    ASSERT_TRUE(dev_.allocateBlock(0, 0, c0, b0));
    dev_.chip(0, c0).programNextPage(b0);
    ASSERT_TRUE(dev_.allocateBlock(1, 0, c1, b1));
    dev_.chip(1, c1).programNextPage(b1);

    const SimTime t0 = dev_.issueRead(geo.makePpa(0, c0, b0, 0), nullptr);
    const SimTime t1 = dev_.issueRead(geo.makePpa(1, c1, b1, 0), nullptr);
    EXPECT_EQ(t0, t1);
}

TEST_F(FlashDeviceTest, WriteSlotFreesAtTransferEnd)
{
    const auto &geo = dev_.geometry();
    ChipId chip;
    BlockId blk;
    ASSERT_TRUE(dev_.allocateBlock(0, 0, chip, blk));
    const PageId pg = dev_.chip(0, chip).programNextPage(blk);
    ChannelId freed_ch = 999;
    dev_.setOnSlotFreed([&](ChannelId ch) { freed_ch = ch; });
    dev_.issueProgram(geo.makePpa(0, chip, blk, pg), nullptr);
    EXPECT_EQ(dev_.channel(0).outstanding(), 1u);
    eq_.runUntil(geo.pageTransferTime());
    EXPECT_EQ(dev_.channel(0).outstanding(), 0u);
    EXPECT_EQ(freed_ch, 0u);
}

TEST_F(FlashDeviceTest, QueueDepthGatesDispatch)
{
    const auto &geo = dev_.geometry();
    ChipId chip;
    BlockId blk;
    ASSERT_TRUE(dev_.allocateBlock(0, 0, chip, blk));
    for (std::uint32_t i = 0; i < geo.max_queue_depth; ++i) {
        const PageId pg = dev_.chip(0, chip).programNextPage(blk);
        ASSERT_TRUE(dev_.canDispatch(0));
        dev_.issueRead(geo.makePpa(0, chip, blk, pg), nullptr);
    }
    EXPECT_FALSE(dev_.canDispatch(0));
    eq_.runAll();
    EXPECT_TRUE(dev_.canDispatch(0));
}

TEST_F(FlashDeviceTest, GcOpsBypassQueueDepthButShareTime)
{
    const auto &geo = dev_.geometry();
    ChipId chip;
    BlockId blk;
    ASSERT_TRUE(dev_.allocateBlock(0, 0, chip, blk));
    const PageId pg = dev_.chip(0, chip).programNextPage(blk);
    const Ppa ppa = geo.makePpa(0, chip, blk, pg);

    const SimTime t_gc = dev_.issueGcRead(ppa, nullptr);
    EXPECT_EQ(dev_.channel(0).outstanding(), 0u);  // not counted
    EXPECT_EQ(dev_.gcReads(), 1u);
    // A host read behind it queues on the same bus.
    const SimTime t_host = dev_.issueRead(ppa, nullptr);
    EXPECT_GT(t_host, t_gc);
}

TEST_F(FlashDeviceTest, AllocatePrefersChipWithMostFreeBlocks)
{
    // Drain chip 0 down by several blocks.
    for (int i = 0; i < 3; ++i)
        dev_.chip(0, 0).allocateBlock(0);
    ChipId chip;
    BlockId blk;
    ASSERT_TRUE(dev_.allocateBlock(0, 1, chip, blk));
    EXPECT_NE(chip, 0u);
}

TEST_F(FlashDeviceTest, FreeCountsAndRatios)
{
    const auto &geo = dev_.geometry();
    EXPECT_EQ(dev_.totalFreeBlocks(), geo.totalBlocks());
    EXPECT_DOUBLE_EQ(dev_.freeRatio(0), 1.0);
    ChipId chip;
    BlockId blk;
    dev_.allocateBlock(0, 0, chip, blk);
    EXPECT_EQ(dev_.freeBlocksInChannel(0),
              std::uint32_t(geo.blocksPerChannel()) - 1);
}

TEST_F(FlashDeviceTest, InvalidateAndRmapRoundTrip)
{
    const auto &geo = dev_.geometry();
    ChipId chip;
    BlockId blk;
    ASSERT_TRUE(dev_.allocateBlock(2, 0, chip, blk));
    const PageId pg = dev_.chip(2, chip).programNextPage(blk);
    const Ppa ppa = geo.makePpa(2, chip, blk, pg);
    dev_.setRmap(ppa, 5, 1234);
    EXPECT_EQ(dev_.rmap(ppa).data_vssd, 5u);
    EXPECT_EQ(dev_.rmap(ppa).lpa, 1234u);
    dev_.invalidatePage(ppa);
    EXPECT_EQ(dev_.blockOf(ppa).valid_count, 0u);
}

TEST_F(FlashDeviceTest, UtilizationAccountsBusTime)
{
    const auto &geo = dev_.geometry();
    ChipId chip;
    BlockId blk;
    ASSERT_TRUE(dev_.allocateBlock(0, 0, chip, blk));
    const PageId pg = dev_.chip(0, chip).programNextPage(blk);
    dev_.issueRead(geo.makePpa(0, chip, blk, pg), nullptr);
    eq_.runAll();
    const SimTime elapsed = eq_.now();
    const double util = dev_.busUtilization(elapsed);
    const double expect = double(geo.pageTransferTime()) /
                          (double(elapsed) * geo.num_channels);
    EXPECT_NEAR(util, expect, 1e-9);
    dev_.resetBusyWindow();
    EXPECT_DOUBLE_EQ(dev_.busUtilization(elapsed), 0.0);
}

TEST_F(FlashDeviceTest, WriteAmplificationRatio)
{
    const auto &geo = dev_.geometry();
    EXPECT_DOUBLE_EQ(dev_.writeAmplification(), 1.0);
    ChipId chip;
    BlockId blk;
    ASSERT_TRUE(dev_.allocateBlock(0, 0, chip, blk));
    for (int i = 0; i < 4; ++i) {
        const PageId pg = dev_.chip(0, chip).programNextPage(blk);
        dev_.issueProgram(geo.makePpa(0, chip, blk, pg), nullptr);
    }
    const PageId pg = dev_.chip(0, chip).programNextPage(blk);
    dev_.issueGcProgram(geo.makePpa(0, chip, blk, pg), nullptr);
    EXPECT_DOUBLE_EQ(dev_.writeAmplification(), 5.0 / 4.0);
}

}  // namespace
}  // namespace fleetio
