# Empty compiler generated dependencies file for fleetio_tests.
# This may be replaced when dependencies are built.
