
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_action_reward.cc" "tests/CMakeFiles/fleetio_tests.dir/test_action_reward.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_action_reward.cc.o.d"
  "/root/repo/tests/test_adam.cc" "tests/CMakeFiles/fleetio_tests.dir/test_adam.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_adam.cc.o.d"
  "/root/repo/tests/test_admission_control.cc" "tests/CMakeFiles/fleetio_tests.dir/test_admission_control.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_admission_control.cc.o.d"
  "/root/repo/tests/test_agent.cc" "tests/CMakeFiles/fleetio_tests.dir/test_agent.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_agent.cc.o.d"
  "/root/repo/tests/test_alpha_tuner.cc" "tests/CMakeFiles/fleetio_tests.dir/test_alpha_tuner.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_alpha_tuner.cc.o.d"
  "/root/repo/tests/test_bandwidth_meter.cc" "tests/CMakeFiles/fleetio_tests.dir/test_bandwidth_meter.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_bandwidth_meter.cc.o.d"
  "/root/repo/tests/test_categorical.cc" "tests/CMakeFiles/fleetio_tests.dir/test_categorical.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_categorical.cc.o.d"
  "/root/repo/tests/test_channel_allocator.cc" "tests/CMakeFiles/fleetio_tests.dir/test_channel_allocator.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_channel_allocator.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/fleetio_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_features.cc" "tests/CMakeFiles/fleetio_tests.dir/test_features.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_features.cc.o.d"
  "/root/repo/tests/test_flash_chip.cc" "tests/CMakeFiles/fleetio_tests.dir/test_flash_chip.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_flash_chip.cc.o.d"
  "/root/repo/tests/test_flash_device.cc" "tests/CMakeFiles/fleetio_tests.dir/test_flash_device.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_flash_device.cc.o.d"
  "/root/repo/tests/test_fleetio_controller.cc" "tests/CMakeFiles/fleetio_tests.dir/test_fleetio_controller.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_fleetio_controller.cc.o.d"
  "/root/repo/tests/test_ftl.cc" "tests/CMakeFiles/fleetio_tests.dir/test_ftl.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_ftl.cc.o.d"
  "/root/repo/tests/test_gc.cc" "tests/CMakeFiles/fleetio_tests.dir/test_gc.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_gc.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/fleetio_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_gsb.cc" "tests/CMakeFiles/fleetio_tests.dir/test_gsb.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_gsb.cc.o.d"
  "/root/repo/tests/test_gsb_manager.cc" "tests/CMakeFiles/fleetio_tests.dir/test_gsb_manager.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_gsb_manager.cc.o.d"
  "/root/repo/tests/test_gsb_pool.cc" "tests/CMakeFiles/fleetio_tests.dir/test_gsb_pool.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_gsb_pool.cc.o.d"
  "/root/repo/tests/test_hbt.cc" "tests/CMakeFiles/fleetio_tests.dir/test_hbt.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_hbt.cc.o.d"
  "/root/repo/tests/test_histogram.cc" "tests/CMakeFiles/fleetio_tests.dir/test_histogram.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_histogram.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/fleetio_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_io_scheduler.cc" "tests/CMakeFiles/fleetio_tests.dir/test_io_scheduler.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_io_scheduler.cc.o.d"
  "/root/repo/tests/test_kmeans.cc" "tests/CMakeFiles/fleetio_tests.dir/test_kmeans.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_kmeans.cc.o.d"
  "/root/repo/tests/test_latency_tracker.cc" "tests/CMakeFiles/fleetio_tests.dir/test_latency_tracker.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_latency_tracker.cc.o.d"
  "/root/repo/tests/test_matrix.cc" "tests/CMakeFiles/fleetio_tests.dir/test_matrix.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_matrix.cc.o.d"
  "/root/repo/tests/test_mlp.cc" "tests/CMakeFiles/fleetio_tests.dir/test_mlp.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_mlp.cc.o.d"
  "/root/repo/tests/test_pca.cc" "tests/CMakeFiles/fleetio_tests.dir/test_pca.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_pca.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/fleetio_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_policy_network.cc" "tests/CMakeFiles/fleetio_tests.dir/test_policy_network.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_policy_network.cc.o.d"
  "/root/repo/tests/test_ppo.cc" "tests/CMakeFiles/fleetio_tests.dir/test_ppo.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_ppo.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/fleetio_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_reporting.cc" "tests/CMakeFiles/fleetio_tests.dir/test_reporting.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_reporting.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/fleetio_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_rollout_buffer.cc" "tests/CMakeFiles/fleetio_tests.dir/test_rollout_buffer.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_rollout_buffer.cc.o.d"
  "/root/repo/tests/test_state_extractor.cc" "tests/CMakeFiles/fleetio_tests.dir/test_state_extractor.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_state_extractor.cc.o.d"
  "/root/repo/tests/test_stride_scheduler.cc" "tests/CMakeFiles/fleetio_tests.dir/test_stride_scheduler.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_stride_scheduler.cc.o.d"
  "/root/repo/tests/test_superblock.cc" "tests/CMakeFiles/fleetio_tests.dir/test_superblock.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_superblock.cc.o.d"
  "/root/repo/tests/test_teacher.cc" "tests/CMakeFiles/fleetio_tests.dir/test_teacher.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_teacher.cc.o.d"
  "/root/repo/tests/test_testbed.cc" "tests/CMakeFiles/fleetio_tests.dir/test_testbed.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_testbed.cc.o.d"
  "/root/repo/tests/test_token_bucket.cc" "tests/CMakeFiles/fleetio_tests.dir/test_token_bucket.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_token_bucket.cc.o.d"
  "/root/repo/tests/test_vssd.cc" "tests/CMakeFiles/fleetio_tests.dir/test_vssd.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_vssd.cc.o.d"
  "/root/repo/tests/test_workload_classifier.cc" "tests/CMakeFiles/fleetio_tests.dir/test_workload_classifier.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_workload_classifier.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/fleetio_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/fleetio_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fleetio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
