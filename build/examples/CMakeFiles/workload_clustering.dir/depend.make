# Empty dependencies file for workload_clustering.
# This may be replaced when dependencies are built.
