file(REMOVE_RECURSE
  "CMakeFiles/workload_clustering.dir/workload_clustering.cpp.o"
  "CMakeFiles/workload_clustering.dir/workload_clustering.cpp.o.d"
  "workload_clustering"
  "workload_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
