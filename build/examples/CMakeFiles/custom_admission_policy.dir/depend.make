# Empty dependencies file for custom_admission_policy.
# This may be replaced when dependencies are built.
