file(REMOVE_RECURSE
  "CMakeFiles/custom_admission_policy.dir/custom_admission_policy.cpp.o"
  "CMakeFiles/custom_admission_policy.dir/custom_admission_policy.cpp.o.d"
  "custom_admission_policy"
  "custom_admission_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_admission_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
