file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_harvesting.dir/multi_tenant_harvesting.cpp.o"
  "CMakeFiles/multi_tenant_harvesting.dir/multi_tenant_harvesting.cpp.o.d"
  "multi_tenant_harvesting"
  "multi_tenant_harvesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_harvesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
