# Empty dependencies file for multi_tenant_harvesting.
# This may be replaced when dependencies are built.
