file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_clustering.dir/bench_fig06_clustering.cc.o"
  "CMakeFiles/bench_fig06_clustering.dir/bench_fig06_clustering.cc.o.d"
  "bench_fig06_clustering"
  "bench_fig06_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
