# Empty compiler generated dependencies file for bench_sec47_overheads.
# This may be replaced when dependencies are built.
