file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_mixed_isolation.dir/bench_fig16_mixed_isolation.cc.o"
  "CMakeFiles/bench_fig16_mixed_isolation.dir/bench_fig16_mixed_isolation.cc.o.d"
  "bench_fig16_mixed_isolation"
  "bench_fig16_mixed_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_mixed_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
