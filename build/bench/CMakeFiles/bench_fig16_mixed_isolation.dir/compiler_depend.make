# Empty compiler generated dependencies file for bench_fig16_mixed_isolation.
# This may be replaced when dependencies are built.
