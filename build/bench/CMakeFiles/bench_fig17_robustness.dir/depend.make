# Empty dependencies file for bench_fig17_robustness.
# This may be replaced when dependencies are built.
