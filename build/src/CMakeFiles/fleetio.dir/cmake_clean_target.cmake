file(REMOVE_RECURSE
  "libfleetio.a"
)
