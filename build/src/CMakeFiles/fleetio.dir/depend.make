# Empty dependencies file for fleetio.
# This may be replaced when dependencies are built.
