
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/alpha_tuner.cc" "src/CMakeFiles/fleetio.dir/cluster/alpha_tuner.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/cluster/alpha_tuner.cc.o.d"
  "/root/repo/src/cluster/features.cc" "src/CMakeFiles/fleetio.dir/cluster/features.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/cluster/features.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/fleetio.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/pca.cc" "src/CMakeFiles/fleetio.dir/cluster/pca.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/cluster/pca.cc.o.d"
  "/root/repo/src/cluster/workload_classifier.cc" "src/CMakeFiles/fleetio.dir/cluster/workload_classifier.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/cluster/workload_classifier.cc.o.d"
  "/root/repo/src/core/action.cc" "src/CMakeFiles/fleetio.dir/core/action.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/core/action.cc.o.d"
  "/root/repo/src/core/admission_control.cc" "src/CMakeFiles/fleetio.dir/core/admission_control.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/core/admission_control.cc.o.d"
  "/root/repo/src/core/agent.cc" "src/CMakeFiles/fleetio.dir/core/agent.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/core/agent.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/fleetio.dir/core/config.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/core/config.cc.o.d"
  "/root/repo/src/core/fleetio_controller.cc" "src/CMakeFiles/fleetio.dir/core/fleetio_controller.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/core/fleetio_controller.cc.o.d"
  "/root/repo/src/core/reward.cc" "src/CMakeFiles/fleetio.dir/core/reward.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/core/reward.cc.o.d"
  "/root/repo/src/core/state_extractor.cc" "src/CMakeFiles/fleetio.dir/core/state_extractor.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/core/state_extractor.cc.o.d"
  "/root/repo/src/core/teacher.cc" "src/CMakeFiles/fleetio.dir/core/teacher.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/core/teacher.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/fleetio.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/reporting.cc" "src/CMakeFiles/fleetio.dir/harness/reporting.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/harness/reporting.cc.o.d"
  "/root/repo/src/harness/testbed.cc" "src/CMakeFiles/fleetio.dir/harness/testbed.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/harness/testbed.cc.o.d"
  "/root/repo/src/harvest/gsb.cc" "src/CMakeFiles/fleetio.dir/harvest/gsb.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/harvest/gsb.cc.o.d"
  "/root/repo/src/harvest/gsb_manager.cc" "src/CMakeFiles/fleetio.dir/harvest/gsb_manager.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/harvest/gsb_manager.cc.o.d"
  "/root/repo/src/harvest/gsb_pool.cc" "src/CMakeFiles/fleetio.dir/harvest/gsb_pool.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/harvest/gsb_pool.cc.o.d"
  "/root/repo/src/harvest/harvested_block_table.cc" "src/CMakeFiles/fleetio.dir/harvest/harvested_block_table.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/harvest/harvested_block_table.cc.o.d"
  "/root/repo/src/policies/adaptive.cc" "src/CMakeFiles/fleetio.dir/policies/adaptive.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/policies/adaptive.cc.o.d"
  "/root/repo/src/policies/fleetio_policy.cc" "src/CMakeFiles/fleetio.dir/policies/fleetio_policy.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/policies/fleetio_policy.cc.o.d"
  "/root/repo/src/policies/hardware_isolation.cc" "src/CMakeFiles/fleetio.dir/policies/hardware_isolation.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/policies/hardware_isolation.cc.o.d"
  "/root/repo/src/policies/policy.cc" "src/CMakeFiles/fleetio.dir/policies/policy.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/policies/policy.cc.o.d"
  "/root/repo/src/policies/software_isolation.cc" "src/CMakeFiles/fleetio.dir/policies/software_isolation.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/policies/software_isolation.cc.o.d"
  "/root/repo/src/policies/ssdkeeper.cc" "src/CMakeFiles/fleetio.dir/policies/ssdkeeper.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/policies/ssdkeeper.cc.o.d"
  "/root/repo/src/rl/adam.cc" "src/CMakeFiles/fleetio.dir/rl/adam.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/rl/adam.cc.o.d"
  "/root/repo/src/rl/categorical.cc" "src/CMakeFiles/fleetio.dir/rl/categorical.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/rl/categorical.cc.o.d"
  "/root/repo/src/rl/matrix.cc" "src/CMakeFiles/fleetio.dir/rl/matrix.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/rl/matrix.cc.o.d"
  "/root/repo/src/rl/mlp.cc" "src/CMakeFiles/fleetio.dir/rl/mlp.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/rl/mlp.cc.o.d"
  "/root/repo/src/rl/policy_network.cc" "src/CMakeFiles/fleetio.dir/rl/policy_network.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/rl/policy_network.cc.o.d"
  "/root/repo/src/rl/ppo.cc" "src/CMakeFiles/fleetio.dir/rl/ppo.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/rl/ppo.cc.o.d"
  "/root/repo/src/rl/rollout_buffer.cc" "src/CMakeFiles/fleetio.dir/rl/rollout_buffer.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/rl/rollout_buffer.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/fleetio.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/fleetio.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/sim/rng.cc.o.d"
  "/root/repo/src/ssd/channel.cc" "src/CMakeFiles/fleetio.dir/ssd/channel.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/ssd/channel.cc.o.d"
  "/root/repo/src/ssd/flash_chip.cc" "src/CMakeFiles/fleetio.dir/ssd/flash_chip.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/ssd/flash_chip.cc.o.d"
  "/root/repo/src/ssd/flash_device.cc" "src/CMakeFiles/fleetio.dir/ssd/flash_device.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/ssd/flash_device.cc.o.d"
  "/root/repo/src/ssd/ftl.cc" "src/CMakeFiles/fleetio.dir/ssd/ftl.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/ssd/ftl.cc.o.d"
  "/root/repo/src/ssd/gc.cc" "src/CMakeFiles/fleetio.dir/ssd/gc.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/ssd/gc.cc.o.d"
  "/root/repo/src/ssd/geometry.cc" "src/CMakeFiles/fleetio.dir/ssd/geometry.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/ssd/geometry.cc.o.d"
  "/root/repo/src/ssd/superblock.cc" "src/CMakeFiles/fleetio.dir/ssd/superblock.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/ssd/superblock.cc.o.d"
  "/root/repo/src/stats/bandwidth_meter.cc" "src/CMakeFiles/fleetio.dir/stats/bandwidth_meter.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/stats/bandwidth_meter.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/fleetio.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/latency_tracker.cc" "src/CMakeFiles/fleetio.dir/stats/latency_tracker.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/stats/latency_tracker.cc.o.d"
  "/root/repo/src/virt/channel_allocator.cc" "src/CMakeFiles/fleetio.dir/virt/channel_allocator.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/virt/channel_allocator.cc.o.d"
  "/root/repo/src/virt/io_scheduler.cc" "src/CMakeFiles/fleetio.dir/virt/io_scheduler.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/virt/io_scheduler.cc.o.d"
  "/root/repo/src/virt/stride_scheduler.cc" "src/CMakeFiles/fleetio.dir/virt/stride_scheduler.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/virt/stride_scheduler.cc.o.d"
  "/root/repo/src/virt/token_bucket.cc" "src/CMakeFiles/fleetio.dir/virt/token_bucket.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/virt/token_bucket.cc.o.d"
  "/root/repo/src/virt/virtual_queue.cc" "src/CMakeFiles/fleetio.dir/virt/virtual_queue.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/virt/virtual_queue.cc.o.d"
  "/root/repo/src/virt/vssd.cc" "src/CMakeFiles/fleetio.dir/virt/vssd.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/virt/vssd.cc.o.d"
  "/root/repo/src/workloads/address_space.cc" "src/CMakeFiles/fleetio.dir/workloads/address_space.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/workloads/address_space.cc.o.d"
  "/root/repo/src/workloads/generators.cc" "src/CMakeFiles/fleetio.dir/workloads/generators.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/workloads/generators.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/fleetio.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/fleetio.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
