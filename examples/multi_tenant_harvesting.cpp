/**
 * @file
 * Assembling the stack by hand: build the device, vSSDs, gSB manager
 * and FleetIO controller directly (no policy/harness sugar), watch the
 * gSB pool and per-window dynamics as harvesting happens, then
 * deallocate a tenant and observe its capacity become harvestable.
 */
#include <iomanip>
#include <iostream>

#include "src/core/fleetio_controller.h"
#include "src/harness/reporting.h"
#include "src/harness/testbed.h"
#include "src/virt/channel_allocator.h"

using namespace fleetio;

int
main()
{
    // 1. The substrate: a scaled-down Table-3 SSD with two tenants.
    TestbedOptions opts;
    opts.window = msec(100);
    Testbed tb(opts);
    const auto &geo = tb.device().geometry();
    const auto split = ChannelAllocator::equalSplit(geo, 2);
    const auto quota = geo.totalBlocks() / 2;

    Vssd &web = tb.addTenant(WorkloadKind::kVdiWeb, split[0], quota,
                             msec(2));
    Vssd &sort = tb.addTenant(WorkloadKind::kTeraSort, split[1], quota,
                              msec(25));

    // 2. FleetIO: one RL agent per vSSD, fine-tuned reward alphas.
    FleetIoConfig cfg;
    cfg.decision_window = opts.window;
    cfg.teacher_windows = 300;  // bootstrap phase (see DESIGN.md)
    FleetIoController ctrl(cfg, tb.eq(), tb.vssds(), tb.gsb());
    ctrl.addVssd(web, cfg.alpha_lc1);   // latency-sensitive
    ctrl.addVssd(sort, cfg.alpha_bi);   // bandwidth-intensive
    ctrl.start();

    tb.warmupFill();
    tb.startWorkloads();

    // 3. Watch the harvesting dynamics for a few seconds.
    std::cout << "time   sort BW     web P99   held  donated  pool  "
                 "gSBs(c/h/r)\n";
    std::uint64_t prev_bytes = 0;
    for (int i = 0; i < 12; ++i) {
        tb.run(msec(500));
        // The controller rolls the per-window stats every 100 ms, so
        // report interval bandwidth from the lifetime byte counter and
        // the tail from the lifetime latency distribution.
        const std::uint64_t bytes = sort.bandwidth().totalBytes();
        const double interval_mbps =
            double(bytes - prev_bytes) / (1024.0 * 1024.0) / 0.5;
        prev_bytes = bytes;
        std::cout << std::setw(4) << toSeconds(tb.eq().now()) << "s  "
                  << std::setw(7) << fmtDouble(interval_mbps, 1)
                  << " MB/s  "
                  << std::setw(8)
                  << fmtLatencyMs(web.latency().quantile(0.99))
                  << "  " << std::setw(4)
                  << tb.gsb().heldChannels(sort.id()) << "  "
                  << std::setw(7) << tb.gsb().donatedChannels(web.id())
                  << "  " << std::setw(4) << tb.gsb().pool().available()
                  << "  " << tb.gsb().createdCount() << "/"
                  << tb.gsb().harvestedCount() << "/"
                  << tb.gsb().reclaimedCount() << "\n";
    }

    // 4. Deallocate the web tenant (§3.7): its data is trimmed and its
    //    blocks become reclaimable for future harvesting.
    std::cout << "\nDeallocating the VDI-Web vSSD...\n";
    tb.workload(web.id()).stop();
    ctrl.stop();
    tb.vssds().deallocate(web.id());
    tb.run(sec(2));
    std::cout << "web live pages after deallocation: "
              << web.ftl().livePages() << "\n";
    std::cout << "device write amplification: "
              << fmtDouble(tb.device().writeAmplification()) << "\n";
    return 0;
}
