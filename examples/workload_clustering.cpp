/**
 * @file
 * Workload typing end-to-end (§3.4): capture block traces from live
 * workloads, extract the four I/O features per window, fit the
 * k-means classifier, classify a new trace, and pick the fine-tuned
 * reward alpha for it — including the unknown-workload fallback to
 * the unified reward.
 */
#include <iostream>
#include <numeric>

#include "src/cluster/features.h"
#include "src/cluster/workload_classifier.h"
#include "src/core/config.h"
#include "src/harness/testbed.h"

using namespace fleetio;

namespace {

std::vector<IoFeatures>
traceWindows(WorkloadKind kind)
{
    TestbedOptions opts;
    Testbed tb(opts);
    std::vector<ChannelId> all(opts.geo.num_channels);
    std::iota(all.begin(), all.end(), 0);
    Vssd &v = tb.addTenant(kind, all, opts.geo.totalBlocks(), msec(50));
    auto &w = tb.workload(v.id());
    w.enableTrace(40000);
    tb.warmupFill();
    tb.startWorkloads();
    tb.run(sec(12));
    return extractWindows(w.trace(), opts.geo.page_size,
                          v.ftl().logicalPages(), 1000);
}

}  // namespace

int
main()
{
    // 1. Collect labelled training windows from a few known workloads.
    const std::vector<WorkloadKind> corpus = {
        WorkloadKind::kVdiWeb, WorkloadKind::kTpce,   // LC-1-ish
        WorkloadKind::kYcsbB,                          // LC-2
        WorkloadKind::kTeraSort, WorkloadKind::kMlPrep // BI
    };
    std::vector<rl::Vector> features;
    std::vector<int> ids;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const auto windows = traceWindows(corpus[i]);
        std::cout << workloadName(corpus[i]) << ": " << windows.size()
                  << " windows";
        if (!windows.empty()) {
            std::cout << "  (read " << windows[0].read_bw_mbps
                      << " MB/s, write " << windows[0].write_bw_mbps
                      << " MB/s, entropy " << windows[0].lpa_entropy
                      << " bits, avg I/O " << windows[0].avg_io_kb
                      << " KB)";
        }
        std::cout << "\n";
        for (const auto &f : windows) {
            features.push_back(f.toVector());
            ids.push_back(int(i));
        }
    }

    // 2. Fit the classifier (k = 3: LC-1, LC-2, BI as in Fig. 6).
    WorkloadClassifier wc;
    wc.fit(features, ids);
    std::cout << "\nfitted " << wc.numClusters() << " clusters\n";

    // 3. Classify a workload the classifier has not seen (PageRank) —
    //    it should land in the BI cluster by I/O pattern alone.
    FleetIoConfig cfg;
    const auto pr = traceWindows(WorkloadKind::kPageRank);
    if (!pr.empty()) {
        const auto assign = wc.classify(pr.front().toVector());
        std::cout << "PageRank window -> cluster " << assign.cluster
                  << " -> alpha " << cfg.alphaForCluster(assign.cluster)
                  << "\n";
    }

    // 4. An out-of-distribution workload falls back to the unified
    //    reward (alpha = 0.01) and would be queued for offline tuning.
    const rl::Vector alien{5000.0, 4000.0, 1.0, 1024.0};
    const auto assign = wc.classify(alien);
    std::cout << "alien workload -> cluster " << assign.cluster
              << " (unknown) -> unified alpha "
              << cfg.alphaForCluster(assign.cluster) << "\n";
    return 0;
}
