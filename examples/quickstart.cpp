/**
 * @file
 * Quickstart: collocate a latency-sensitive and a bandwidth-intensive
 * tenant on one simulated SSD, run them under FleetIO, and print the
 * headline metrics. This is the smallest end-to-end use of the public
 * API (the harness does all the wiring).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <iostream>

#include "src/harness/experiment.h"
#include "src/harness/reporting.h"

using namespace fleetio;

int
main()
{
    // Describe the experiment: which tenants, which policy, how long.
    ExperimentSpec spec;
    spec.workloads = {WorkloadKind::kVdiWeb, WorkloadKind::kTeraSort};
    spec.policy = PolicyKind::kFleetIo;
    spec.opts.window = msec(100);  // compressed 2 s decision window
    spec.warm_run = sec(2);
    spec.measure = sec(12);

    std::cout << "Running VDI-Web + TeraSort under FleetIO...\n\n";
    const ExperimentResult fleet = runExperiment(spec);
    printExperimentDetail(fleet, std::cout);

    // Compare against the two classic isolation baselines.
    spec.policy = PolicyKind::kHardwareIsolation;
    const ExperimentResult hw = runExperiment(spec);
    spec.policy = PolicyKind::kSoftwareIsolation;
    const ExperimentResult sw = runExperiment(spec);

    std::cout << "Utilization: hardware-isolated "
              << fmtPercent(hw.avg_util) << ", FleetIO "
              << fmtPercent(fleet.avg_util) << ", software-isolated "
              << fmtPercent(sw.avg_util) << "\n";
    std::cout << "VDI-Web P99: hardware-isolated "
              << fmtLatencyMs(SimTime(hw.meanLatencySensitiveP99()))
              << ", FleetIO "
              << fmtLatencyMs(SimTime(fleet.meanLatencySensitiveP99()))
              << ", software-isolated "
              << fmtLatencyMs(SimTime(sw.meanLatencySensitiveP99()))
              << "\n";
    std::cout << "\nFleetIO's pitch in one line: most of software "
                 "isolation's utilization at close to hardware "
                 "isolation's tail latency.\n";
    return 0;
}
