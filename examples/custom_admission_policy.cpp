/**
 * @file
 * Provider-side admission policies (§3.5): cloud operators can veto
 * individual RL actions. Here a "spot" tenant is forbidden from
 * harvesting and a "premium" tenant from donating, and the effect is
 * visible in the admission counters and gSB state.
 */
#include <iostream>

#include "src/core/admission_control.h"
#include "src/harness/testbed.h"
#include "src/virt/channel_allocator.h"

using namespace fleetio;

int
main()
{
    TestbedOptions opts;
    Testbed tb(opts);
    const auto &geo = tb.device().geometry();
    const auto split = ChannelAllocator::equalSplit(geo, 3);
    const auto quota = geo.totalBlocks() / 3;

    // Tenant roles: 0 = premium (never donates), 1 = standard,
    // 2 = spot (never harvests).
    Vssd &premium = tb.addTenant(WorkloadKind::kYcsbB, split[0], quota,
                                 msec(2));
    Vssd &standard = tb.addTenant(WorkloadKind::kVdiWeb, split[1],
                                  quota, msec(2));
    Vssd &spot = tb.addTenant(WorkloadKind::kBatchAnalytics, split[2],
                              quota, msec(40));

    AdmissionControl adm(tb.gsb(), tb.eq(), msec(50));
    adm.setPermissionCheck([&](const PendingAction &a) {
        if (a.vssd == premium.id() &&
            a.type == PendingAction::Type::kMakeHarvestable) {
            return false;  // premium capacity is never harvestable
        }
        if (a.vssd == spot.id() &&
            a.type == PendingAction::Type::kHarvest) {
            return false;  // spot tenants may not harvest
        }
        return true;
    });

    const double ch_bw = geo.channelBandwidthMBps();
    // Everyone tries to donate 2 channels and harvest 2 channels.
    for (Vssd *v : {&premium, &standard, &spot}) {
        adm.submit({v->id(), PendingAction::Type::kMakeHarvestable,
                    ch_bw * 2, 0});
        adm.submit({v->id(), PendingAction::Type::kHarvest, ch_bw * 2,
                    0});
    }
    adm.flush();

    std::cout << "processed=" << adm.processed()
              << " rejected=" << adm.rejected() << "\n";
    std::cout << "premium donated: "
              << tb.gsb().donatedChannels(premium.id())
              << " channels (policy forbids donating)\n";
    std::cout << "standard donated: "
              << tb.gsb().donatedChannels(standard.id())
              << " channels\n";
    std::cout << "spot harvested: "
              << tb.gsb().heldChannels(spot.id())
              << " channels (policy forbids harvesting)\n";
    std::cout << "premium harvested: "
              << tb.gsb().heldChannels(premium.id()) << " channels\n";
    return 0;
}
