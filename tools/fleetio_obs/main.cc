/**
 * @file
 * fleetio-obs: offline root-cause explorer over fleetio-attribution-v1
 * artifacts (the `<base>.attribution.json` files written next to
 * BENCH_*.json when FLEETIO_TRACE is set). Answers "why is my p99
 * high?" without re-running the experiment:
 *
 *   fleetio_obs slow     <file> [--top N]   top-N slow requests, staged
 *   fleetio_obs matrix   <file>             interference blame matrix
 *   fleetio_obs verdicts <file>             per-window SLO verdicts
 *   fleetio_obs drift    <file>             agent drift (PSI/KL) report
 *   fleetio_obs summary  <file>             everything, condensed
 *
 * Read-only tooling: never linked into the simulator.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/json_reader.h"

namespace {

using fleetio::obs::JsonValue;

std::vector<std::string>
stageNames(const JsonValue &root)
{
    std::vector<std::string> names;
    for (const JsonValue &s : root.at("stages").items)
        names.push_back(s.text);
    return names;
}

void
printBar(double fraction, int width)
{
    int fill = int(fraction * width + 0.5);
    fill = std::max(0, std::min(width, fill));
    std::printf("%.*s%.*s", fill, "########################################",
                width - fill, "                                        ");
}

int
cmdSlow(const JsonValue &root, std::size_t top)
{
    const std::vector<std::string> names = stageNames(root);
    const auto &slow = root.at("top_slow").items;
    if (slow.empty()) {
        std::printf("no slow-request records (attribution top_k = 0?)\n");
        return 0;
    }
    std::size_t shown = 0;
    for (const JsonValue &s : slow) {
        if (shown++ >= top)
            break;
        const double lat = s.num("latency_ns");
        std::printf("#%zu req=%.0f tenant=%.0f %s latency=%.1fus "
                    "submit=%.0fns\n",
                    shown, s.num("req"), s.num("tenant"),
                    s.at("write").boolean ? "write" : "read", lat / 1e3,
                    s.num("submit_ns"));
        const auto &stages = s.at("stages_ns").items;
        for (std::size_t i = 0; i < stages.size() && i < names.size();
             ++i) {
            const double ns = stages[i].number;
            if (ns <= 0)
                continue;
            std::printf("    %-21s %10.1fus  ", names[i].c_str(),
                        ns / 1e3);
            printBar(lat > 0 ? ns / lat : 0.0, 32);
            std::printf(" %5.1f%%\n", lat > 0 ? 100.0 * ns / lat : 0.0);
        }
    }
    return 0;
}

int
cmdMatrix(const JsonValue &root)
{
    const auto &blame = root.at("blame_ns").items;
    if (blame.empty()) {
        std::printf("empty blame matrix\n");
        return 0;
    }
    std::printf("interference ledger: blame_ns[victim][culprit] "
                "(row sum == victim's attributed wait time)\n");
    std::printf("%-10s", "victim\\by");
    for (std::size_t c = 0; c < blame.size(); ++c)
        std::printf(" %11s", ("t" + std::to_string(c)).c_str());
    std::printf("  %12s\n", "row_total");
    std::vector<double> col(blame.size(), 0.0);
    for (std::size_t v = 0; v < blame.size(); ++v) {
        double row_total = 0.0;
        std::printf("t%-9zu", v);
        const auto &row = blame[v].items;
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::printf(" %9.1fus", row[c].number / 1e3);
            row_total += row[c].number;
            if (c < col.size() && c != v)
                col[c] += row[c].number;
        }
        std::printf("  %10.1fus\n", row_total / 1e3);
    }
    std::printf("%-10s", "inflicted");
    for (double x : col)
        std::printf(" %9.1fus", x / 1e3);
    std::printf("  (off-diagonal column totals)\n");
    return 0;
}

int
cmdVerdicts(const JsonValue &root)
{
    const auto &verdicts = root.at("verdicts").items;
    std::printf("%zu SLO verdict(s); %s requests, %s violations, %s "
                "stage-sum mismatches\n",
                verdicts.size(),
                std::to_string(std::uint64_t(root.num("requests")))
                    .c_str(),
                std::to_string(std::uint64_t(root.num("violations")))
                    .c_str(),
                std::to_string(std::uint64_t(root.num("sum_mismatches")))
                    .c_str());
    for (const JsonValue &v : verdicts) {
        std::printf("  window %-5.0f t%-3.0f %-20s", v.num("window"),
                    v.num("tenant"), v.str("cause").c_str());
        if (!v.at("culprit").isNull())
            std::printf(" culprit=t%.0f", v.num("culprit"));
        std::printf("  viol=%.0f%% neighbor=%.0f%% self_gc=%.0f%% "
                    "retry=%.0f%%\n",
                    100 * v.num("violation_fraction"),
                    100 * v.num("neighbor_share"),
                    100 * v.num("self_gc_share"),
                    100 * v.num("retry_share"));
    }
    return 0;
}

int
cmdDrift(const JsonValue &root)
{
    const JsonValue &drift = root.at("drift");
    if (!drift.isArray()) {
        std::printf("no drift data (drift monitor disabled)\n");
        return 0;
    }
    std::printf("agent drift scores (PSI vs recorded baseline):\n");
    std::size_t flagged = 0;
    for (const JsonValue &s : drift.items) {
        const bool f = s.at("flagged").boolean;
        flagged += f ? 1 : 0;
        std::printf("  window %-5.0f t%-3.0f psi=%.4f kl=%.4f%s\n",
                    s.num("window"), s.num("tenant"), s.num("psi"),
                    s.num("kl"), f ? "  << DRIFT" : "");
    }
    std::printf("%zu window(s) flagged of %zu scored\n", flagged,
                drift.items.size());
    return 0;
}

int
cmdSummary(const JsonValue &root)
{
    const std::vector<std::string> names = stageNames(root);
    for (const JsonValue &t : root.at("tenants").items) {
        const auto &stages = t.at("stages_ns").items;
        double total = 0.0;
        for (const JsonValue &s : stages)
            total += s.number;
        std::printf("tenant t%.0f: %.0f requests, %.0f violations",
                    t.num("id"), t.num("requests"), t.num("violations"));
        const JsonValue &h = t.at("harvest");
        if (h.isObject())
            std::printf(", harvest created=%.0f reclaims=%.0f "
                        "revoked=%.0f",
                        h.num("created"), h.num("reclaims"),
                        h.num("revoked"));
        std::printf("\n");
        for (std::size_t i = 0; i < stages.size() && i < names.size();
             ++i) {
            if (stages[i].number <= 0)
                continue;
            std::printf("    %-21s %12.1fus  ", names[i].c_str(),
                        stages[i].number / 1e3);
            printBar(total > 0 ? stages[i].number / total : 0.0, 32);
            std::printf(" %5.1f%%\n",
                        total > 0 ? 100.0 * stages[i].number / total
                                  : 0.0);
        }
    }
    std::printf("\n");
    cmdVerdicts(root);
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: fleetio_obs <slow|matrix|verdicts|drift|summary> "
        "<attribution.json> [--top N]\n");
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    const std::string path = argv[2];
    std::size_t top = 10;
    for (int i = 3; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--top") == 0)
            top = std::size_t(std::strtoul(argv[i + 1], nullptr, 10));
    }

    JsonValue root;
    std::string error;
    if (!fleetio::obs::readJsonFile(path, root, error)) {
        std::fprintf(stderr, "fleetio_obs: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    if (root.str("schema") != "fleetio-attribution-v1") {
        std::fprintf(stderr,
                     "fleetio_obs: %s: not a fleetio-attribution-v1 "
                     "artifact\n",
                     path.c_str());
        return 1;
    }

    if (cmd == "slow")
        return cmdSlow(root, top);
    if (cmd == "matrix")
        return cmdMatrix(root);
    if (cmd == "verdicts")
        return cmdVerdicts(root);
    if (cmd == "drift")
        return cmdDrift(root);
    if (cmd == "summary")
        return cmdSummary(root);
    return usage();
}
