/**
 * @file
 * fleetio_lint CLI. Exit codes: 0 clean, 1 violations, 2 usage error.
 */
#include <cstring>
#include <iostream>
#include <string>

#include "tools/fleetio_lint/lint.h"

namespace {

void
usage(std::ostream &os)
{
    os << "usage: fleetio_lint [--root DIR] [--json] [--fix]\n"
          "                    [--rule ID]... [--list-rules]\n"
          "\n"
          "Project-specific static analysis for the FleetIO tree\n"
          "(DESIGN.md \xc2\xa7" "10). Scans src/, tests/, bench/, examples/\n"
          "and tools/ under DIR (default: current directory).\n"
          "\n"
          "  --root DIR    tree to scan\n"
          "  --json        machine-readable fleetio-lint-v1 output\n"
          "  --fix         apply mechanical fixes (include guards ->\n"
          "                #pragma once) and re-lint\n"
          "  --rule ID     run only this rule (repeatable)\n"
          "  --list-rules  print the rule registry and exit\n";
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    bool json = false;
    fleetio::lint::Options opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--fix") {
            opts.fix = true;
        } else if (arg == "--rule" && i + 1 < argc) {
            opts.rules.push_back(argv[++i]);
        } else if (arg == "--list-rules") {
            for (const auto &r : fleetio::lint::rules()) {
                std::cout << r.issue_tag << "  " << r.id << "\n      "
                          << r.summary << "\n";
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "fleetio_lint: unknown argument '" << arg
                      << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    const fleetio::lint::Result res =
        fleetio::lint::runLint(root, opts);
    if (json)
        fleetio::lint::writeJson(std::cout, res, root);
    else
        fleetio::lint::writeHuman(std::cout, res);
    return res.clean() ? 0 : 1;
}
