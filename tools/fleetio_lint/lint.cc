#include "tools/fleetio_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <map>
#include <ostream>
#include <set>

#include "tools/fleetio_lint/source_model.h"

namespace fs = std::filesystem;

namespace fleetio::lint {

namespace {

// ---------------------------------------------------------------- rules

const std::vector<RuleInfo> kRules = {
    {"nondeterminism", "R1",
     "no wall-clock or libc RNG in deterministic code (src/**)"},
    {"hotpath", "R2",
     "no std::function / iostream / throwing std::stoi-family in "
     "src/{sim,ssd,virt}"},
    {"trace-macro", "R3",
     "TraceRecorder emits outside src/obs go through FLEETIO_TRACE_EVENT"},
    {"layering", "R4",
     "src/{sim,ssd} must not include src/{rl,policies,harness,obs}; "
     "src/virt must not include the tenant control plane "
     "(src/core/{tenant_admission,elastic_tenancy}.h)"},
    {"header-hygiene", "R5",
     "headers use #pragma once and never `using namespace`"},
    {"build-registration", "R6",
     "every .cc/.cpp is listed in a CMakeLists.txt"},
    {"journal-api", "R7",
     "block-state mutations in src/{ssd,harvest} go through "
     "FlashDevice's durable* journal API"},
    {"attr-macro", "R8",
     "AttributionHub emits in src/{sim,ssd,virt,harvest} go through "
     "FLEETIO_ATTR_EVENT / FLEETIO_ATTR_SCOPE"},
    {"suppression", "-",
     "fleetio-lint: allow(...) requires a non-empty reason"},
};

// --------------------------------------------------------------- lexer
// The comment/string stripper, word/call matchers and file I/O live in
// the shared source-model layer (source_model.{h,cc}) so fleetio-lint
// and fleetio-analyze agree on what "code" is.

using srcmodel::callLike;
using srcmodel::containsWord;
using srcmodel::isWordChar;
using srcmodel::splitLines;
using srcmodel::stripCode;
using srcmodel::Suppress;

bool
readFile(const fs::path &p, std::string &out)
{
    return srcmodel::readFile(p.string(), out);
}

bool
writeFile(const fs::path &p, const std::string &text)
{
    return srcmodel::writeFile(p.string(), text);
}

/** `time(` only counts with a clearly wall-clock argument shape. */
bool
wallClockTimeCall(const std::string &line)
{
    for (std::size_t pos = line.find("time"); pos != std::string::npos;
         pos = line.find("time", pos + 1)) {
        if (pos > 0 && isWordChar(line[pos - 1]))
            continue;
        std::size_t j = pos + 4;
        while (j < line.size() && std::isspace((unsigned char)line[j]))
            ++j;
        if (j >= line.size() || line[j] != '(')
            continue;
        ++j;
        while (j < line.size() && std::isspace((unsigned char)line[j]))
            ++j;
        const std::string rest = line.substr(j);
        if (rest.rfind(")", 0) == 0 || rest.rfind("nullptr", 0) == 0 ||
            rest.rfind("NULL", 0) == 0 || rest.rfind("0", 0) == 0)
            return true;
    }
    return false;
}

// ------------------------------------------------------ per-file model

struct IncludeEdge
{
    int line = 0;
    std::string target;  ///< as written, e.g. "src/obs/trace.h"
    bool quoted = false;
    bool suppressed = false;  ///< allow(layering) on the include line
};

struct FileInfo
{
    std::string rel;   ///< path relative to root, '/'-separated
    std::vector<std::string> raw;   ///< raw lines
    std::vector<std::string> code;  ///< comment/string-stripped lines
    std::map<int, std::vector<Suppress>> allows;  ///< line -> allows
    std::vector<IncludeEdge> includes;

    bool isHeader() const
    {
        return rel.size() > 2 && (rel.rfind(".h") == rel.size() - 2 ||
                                  rel.rfind(".hpp") == rel.size() - 4);
    }
    bool under(const char *prefix) const
    {
        return rel.rfind(prefix, 0) == 0;
    }
};

std::string
toRel(const fs::path &p, const fs::path &root)
{
    return fs::relative(p, root).generic_string();
}

/** Parse inline suppression comments (syntax documented in lint.h). */
void
parseAllows(FileInfo &f)
{
    f.allows = srcmodel::parseAllows(f.raw, f.code, "fleetio-lint:");
}

void
parseIncludes(FileInfo &f)
{
    for (std::size_t li = 0; li < f.raw.size(); ++li) {
        const std::string &line = f.raw[li];
        std::size_t p = line.find_first_not_of(" \t");
        if (p == std::string::npos || line[p] != '#')
            continue;
        p = line.find("include", p);
        if (p == std::string::npos)
            continue;
        p = line.find_first_of("\"<", p + 7);
        if (p == std::string::npos)
            continue;
        const char closer = line[p] == '"' ? '"' : '>';
        const std::size_t end = line.find(closer, p + 1);
        if (end == std::string::npos)
            continue;
        IncludeEdge e;
        e.line = int(li) + 1;
        e.target = line.substr(p + 1, end - p - 1);
        e.quoted = closer == '"';
        auto it = f.allows.find(e.line);
        if (it != f.allows.end()) {
            for (Suppress &s : it->second) {
                if (s.rule == "layering" && s.has_reason) {
                    e.suppressed = true;
                    s.used = true;
                }
            }
        }
        f.includes.push_back(e);
    }
}

// ------------------------------------------------------------- context

struct Ctx
{
    fs::path root;
    Options opts;
    std::vector<FileInfo> files;
    /** CMakeLists contents keyed by their directory relpath (""=root). */
    std::map<std::string, std::string> cmake;
    Result result;

    bool
    ruleEnabled(const std::string &id) const
    {
        return opts.rules.empty() ||
               std::find(opts.rules.begin(), opts.rules.end(), id) !=
                   opts.rules.end();
    }

    /** Report unless an allow(rule) with a reason covers the line. */
    void
    report(FileInfo &f, int line, const std::string &rule,
           const std::string &message)
    {
        auto it = f.allows.find(line);
        if (it != f.allows.end()) {
            for (Suppress &s : it->second) {
                if (s.rule == rule && s.has_reason) {
                    s.used = true;
                    ++result.suppressions_used;
                    return;
                }
            }
        }
        result.violations.push_back({rule, f.rel, line, message});
    }
};

bool
skippedDir(const std::string &name)
{
    return name == ".git" || name == "lint_fixtures" ||
           name == "analyze_fixtures" || name.rfind("build", 0) == 0;
}

void
collectFiles(Ctx &ctx)
{
    static const char *kRoots[] = {"src", "tests", "bench", "examples",
                                   "tools"};
    std::vector<fs::path> paths;
    for (const char *r : kRoots) {
        const fs::path base = ctx.root / r;
        if (!fs::is_directory(base))
            continue;
        auto it = fs::recursive_directory_iterator(base);
        for (auto end = fs::end(it); it != end; ++it) {
            if (it->is_directory()) {
                if (skippedDir(it->path().filename().string()))
                    it.disable_recursion_pending();
                continue;
            }
            const std::string name = it->path().filename().string();
            const std::string ext = it->path().extension().string();
            if (name == "CMakeLists.txt") {
                std::string text;
                if (readFile(it->path(), text)) {
                    ctx.cmake[toRel(it->path().parent_path(),
                                    ctx.root)] = text;
                }
                continue;
            }
            if (ext == ".h" || ext == ".hpp" || ext == ".cc" ||
                ext == ".cpp")
                paths.push_back(it->path());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path &p : paths) {
        std::string text;
        if (!readFile(p, text))
            continue;
        FileInfo f;
        f.rel = toRel(p, ctx.root);
        if (ctx.opts.fix && f.rel.size() > 2 &&
            (p.extension() == ".h" || p.extension() == ".hpp")) {
            if (fixHeaderGuard(text)) {
                writeFile(p, text);
                ctx.result.fixed_files.push_back(f.rel);
            }
        }
        f.raw = splitLines(text);
        f.code = splitLines(stripCode(text));
        while (f.code.size() < f.raw.size())
            f.code.push_back("");
        parseAllows(f);
        parseIncludes(f);
        ctx.files.push_back(std::move(f));
    }
    ctx.result.files_scanned = ctx.files.size();
}

// ------------------------------------------------------------ R1 / R2

void
checkNondeterminism(Ctx &ctx, FileInfo &f)
{
    if (!f.under("src/"))
        return;
    static const char *kIdents[] = {"system_clock", "steady_clock",
                                    "high_resolution_clock",
                                    "random_device", "gettimeofday",
                                    "clock_gettime", "localtime",
                                    "timeofday"};
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        if (line.empty())
            continue;
        for (const char *id : kIdents) {
            if (containsWord(line, id)) {
                ctx.report(f, int(li) + 1, "nondeterminism",
                           std::string("banned nondeterminism source "
                                       "'") +
                               id +
                               "': deterministic code must use sim "
                               "time / seeded Rng");
            }
        }
        if (callLike(line, "rand") || callLike(line, "srand")) {
            ctx.report(f, int(li) + 1, "nondeterminism",
                       "banned libc RNG (rand/srand): use the seeded "
                       "fleetio::Rng");
        }
        if (callLike(line, "clock") || wallClockTimeCall(line)) {
            ctx.report(f, int(li) + 1, "nondeterminism",
                       "banned wall-clock call (time/clock): "
                       "deterministic code must use sim time");
        }
    }
}

void
checkHotPath(Ctx &ctx, FileInfo &f)
{
    if (!(f.under("src/sim/") || f.under("src/ssd/") ||
          f.under("src/virt/")))
        return;
    static const char *kStoi[] = {"std::stoi",  "std::stol",
                                  "std::stoll", "std::stoul",
                                  "std::stoull", "std::stof",
                                  "std::stod",  "std::stold"};
    for (const IncludeEdge &e : f.includes) {
        if (!e.quoted && e.target == "iostream") {
            ctx.report(f, e.line, "hotpath",
                       "<iostream> in hot-path code: stream state and "
                       "locale machinery do not belong in src/{sim,"
                       "ssd,virt}");
        }
    }
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        if (line.empty())
            continue;
        if (line.find("std::function<") != std::string::npos) {
            ctx.report(f, int(li) + 1, "hotpath",
                       "std::function in hot-path code: use "
                       "fleetio::InlineFunction (src/sim/"
                       "inline_function.h) — no per-callback "
                       "allocation");
        }
        if (containsWord(line, "std::cout") ||
            containsWord(line, "std::cerr") ||
            containsWord(line, "std::clog")) {
            ctx.report(f, int(li) + 1, "hotpath",
                       "iostream writes in hot-path code: report "
                       "through stats/obs instead");
        }
        for (const char *s : kStoi) {
            // containsWord can't span "::", so anchor on the full
            // qualified name and check the right boundary only.
            const std::size_t pos = line.find(s);
            if (pos != std::string::npos &&
                (pos + std::string(s).size() >= line.size() ||
                 !isWordChar(line[pos + std::string(s).size()]))) {
                ctx.report(f, int(li) + 1, "hotpath",
                           std::string(s) +
                               " throws on malformed input: use the "
                               "exception-free parsers in "
                               "src/core/env.h");
            }
        }
    }
}

// ----------------------------------------------------------------- R3

void
checkTraceMacro(Ctx &ctx, FileInfo &f)
{
    if (!f.under("src/") || f.under("src/obs/"))
        return;
    // TraceRecorder's emit-family methods. Export/introspection
    // (writeChromeJson, eventCount, ...) are cold-path and exempt.
    static const char *kEmits[] = {
        "ioSubmit",     "ioDispatch",     "ioComplete", "gcBatch",
        "gcOp",         "gsbEvent",       "agentDecide", "agentReward",
        "agentTrip",    "windowBoundary", "counterSample",
        "setTrackName"};
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        if (line.empty() ||
            line.find("FLEETIO_TRACE_EVENT") != std::string::npos)
            continue;
        for (const char *m : kEmits) {
            // Receiver-qualified call: `x->m(` or `x.m(`. Bare `m(`
            // is the macro's second argument — already guarded.
            for (std::size_t pos = line.find(m);
                 pos != std::string::npos;
                 pos = line.find(m, pos + 1)) {
                const bool dot = pos >= 1 && line[pos - 1] == '.';
                const bool arrow = pos >= 2 &&
                                   line[pos - 2] == '-' &&
                                   line[pos - 1] == '>';
                if (!dot && !arrow)
                    continue;
                std::size_t j = pos + std::string(m).size();
                if (j < line.size() && isWordChar(line[j]))
                    continue;
                while (j < line.size() &&
                       std::isspace((unsigned char)line[j]))
                    ++j;
                if (j >= line.size() || line[j] != '(')
                    continue;
                ctx.report(f, int(li) + 1, "trace-macro",
                           std::string("raw TraceRecorder::") + m +
                               " outside src/obs: wrap in "
                               "FLEETIO_TRACE_EVENT(tracer, " + m +
                               "(...)) so it null-guards and "
                               "compiles out");
            }
        }
    }
}

// ----------------------------------------------------------------- R4

bool
restrictedLayer(const std::string &rel)
{
    return rel.rfind("src/sim/", 0) == 0 ||
           rel.rfind("src/ssd/", 0) == 0;
}

bool
bannedLayer(const std::string &rel)
{
    return rel.rfind("src/rl/", 0) == 0 ||
           rel.rfind("src/policies/", 0) == 0 ||
           rel.rfind("src/harness/", 0) == 0 ||
           rel.rfind("src/obs/", 0) == 0;
}

/**
 * Tenant control-plane headers: admission and elastic-tenancy logic
 * that sits ABOVE the data plane. src/virt is mechanism (carve,
 * tiers, drain); policy decisions must stay in src/core so a static
 * build never links churn machinery into the I/O path.
 */
bool
controlPlaneHeader(const std::string &rel)
{
    return rel == "src/core/tenant_admission.h" ||
           rel == "src/core/elastic_tenancy.h";
}

void
checkLayering(Ctx &ctx)
{
    // Include graph over project-quoted includes ("src/...").
    std::map<std::string, const FileInfo *> by_rel;
    for (const FileInfo &f : ctx.files)
        by_rel[f.rel] = &f;

    for (FileInfo &f : ctx.files) {
        if (f.rel.rfind("src/virt/", 0) != 0)
            continue;
        for (const IncludeEdge &e : f.includes) {
            if (!e.quoted || e.suppressed)
                continue;
            if (controlPlaneHeader(e.target)) {
                ctx.report(f, e.line, "layering",
                           f.rel + " includes " + e.target +
                               ": src/virt is data-plane mechanism "
                               "and must not include the tenant "
                               "control plane");
            }
        }
    }

    for (FileInfo &f : ctx.files) {
        if (!restrictedLayer(f.rel))
            continue;
        for (const IncludeEdge &e : f.includes) {
            if (!e.quoted || e.target.rfind("src/", 0) != 0 ||
                e.suppressed)
                continue;
            if (bannedLayer(e.target)) {
                ctx.report(f, e.line, "layering",
                           f.rel + " includes " + e.target +
                               ": src/{sim,ssd} must stay below "
                               "src/{rl,policies,harness,obs}");
                continue;
            }
            // Transitive reach through non-restricted intermediates.
            // Restricted intermediates are not expanded — their own
            // direct edges answer for them.
            std::vector<std::string> stack{e.target};
            std::map<std::string, std::string> parent;
            parent[e.target] = f.rel;
            std::string hit;
            while (!stack.empty() && hit.empty()) {
                const std::string cur = stack.back();
                stack.pop_back();
                if (restrictedLayer(cur))
                    continue;
                auto it = by_rel.find(cur);
                if (it == by_rel.end())
                    continue;
                for (const IncludeEdge &ce : it->second->includes) {
                    if (!ce.quoted || ce.suppressed ||
                        ce.target.rfind("src/", 0) != 0)
                        continue;
                    if (parent.count(ce.target))
                        continue;
                    parent[ce.target] = cur;
                    if (bannedLayer(ce.target)) {
                        hit = ce.target;
                        break;
                    }
                    stack.push_back(ce.target);
                }
            }
            if (!hit.empty()) {
                std::string chain = hit;
                for (std::string n = parent[hit]; n != f.rel;
                     n = parent[n])
                    chain = n + " -> " + chain;
                ctx.report(f, e.line, "layering",
                           f.rel + " transitively reaches " + hit +
                               " (via " + chain +
                               "): src/{sim,ssd} must stay below "
                               "src/{rl,policies,harness,obs}");
            }
        }
    }
}

// ----------------------------------------------------------------- R5

void
checkHeaderHygiene(Ctx &ctx, FileInfo &f)
{
    if (!f.isHeader())
        return;
    bool pragma = false;
    for (const std::string &line : f.code) {
        std::size_t p = line.find_first_not_of(" \t");
        if (p != std::string::npos && line[p] == '#' &&
            line.find("pragma", p) != std::string::npos &&
            line.find("once", p) != std::string::npos) {
            pragma = true;
            break;
        }
    }
    if (!pragma) {
        ctx.report(f, 1, "header-hygiene",
                   "header lacks #pragma once (fleetio_lint --fix "
                   "converts classic include guards)");
    }
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        if (containsWord(f.code[li], "using namespace")) {
            ctx.report(f, int(li) + 1, "header-hygiene",
                       "`using namespace` in a header leaks into "
                       "every includer");
        }
    }
}

// ----------------------------------------------------------------- R6

void
checkBuildRegistration(Ctx &ctx, FileInfo &f)
{
    const std::string &rel = f.rel;
    const bool is_cc =
        rel.rfind(".cc") == rel.size() - 3 ||
        (rel.size() > 4 && rel.rfind(".cpp") == rel.size() - 4);
    if (!is_cc)
        return;
    const std::size_t slash = rel.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? rel : rel.substr(slash + 1);
    const std::string stem = base.substr(0, base.find_last_of('.'));
    // Walk ancestor directories looking for a CMakeLists that mentions
    // the file (by dir-relative path, basename, or stem — the stem
    // covers foreach(${ex} ...) style lists).
    std::string dir = slash == std::string::npos ? ""
                                                 : rel.substr(0, slash);
    for (;;) {
        auto it = ctx.cmake.find(dir);
        if (it != ctx.cmake.end()) {
            const std::string &text = it->second;
            const std::string rel_from_dir =
                dir.empty() ? rel : rel.substr(dir.size() + 1);
            if (text.find(rel_from_dir) != std::string::npos ||
                text.find(base) != std::string::npos ||
                containsWord(stripCode(text), stem))
                return;
        }
        if (dir.empty())
            break;
        const std::size_t up = dir.find_last_of('/');
        dir = up == std::string::npos ? "" : dir.substr(0, up);
    }
    ctx.report(f, 1, "build-registration",
               rel + " is not listed in any CMakeLists.txt: it never "
                     "builds, so it can rot silently");
}

// ----------------------------------------------------------------- R7

/**
 * The journal-API surface itself: the chip/device primitives and the
 * durability model may touch raw block state; everything else in the
 * SSD and harvesting layers must route through FlashDevice::durable*
 * so crash recovery always sees a consistent OOB/summary record.
 */
bool
journalApiSurface(const std::string &rel)
{
    return rel == "src/ssd/flash_chip.h" ||
           rel == "src/ssd/flash_chip.cc" ||
           rel == "src/ssd/flash_device.h" ||
           rel == "src/ssd/flash_device.cc" ||
           rel == "src/ssd/durability.h" ||
           rel == "src/ssd/durability.cc";
}

void
checkJournalApi(Ctx &ctx, FileInfo &f)
{
    if (!(f.under("src/ssd/") || f.under("src/harvest/")))
        return;
    if (journalApiSurface(f.rel))
        return;
    static const char *kMutators[] = {"eraseBlock", "retireBlock",
                                      "releaseBlock", "closeBlock"};
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        if (line.empty())
            continue;
        for (const char *m : kMutators) {
            if (callLike(line, m)) {
                ctx.report(f, int(li) + 1, "journal-api",
                           std::string("direct ") + m +
                               " bypasses the durable-metadata "
                               "journal: call FlashDevice::durable* "
                               "so OOB/summary state survives a "
                               "crash");
            }
        }
    }
}

// ----------------------------------------------------------------- R8

void
checkAttrMacro(Ctx &ctx, FileInfo &f)
{
    if (!(f.under("src/sim/") || f.under("src/ssd/") ||
          f.under("src/virt/") || f.under("src/harvest/")))
        return;
    // AttributionHub's emit-family methods. Export/introspection
    // (writeJson, results, blame, ...) are cold-path and exempt.
    static const char *kEmits[] = {
        "noteRead",      "noteProgram",   "noteErase",
        "finishHostPage", "zeroFillPage", "recordRequest",
        "resetRequest",  "noteHarvest",   "pushContext",
        "popContext"};
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        if (line.empty() ||
            line.find("FLEETIO_ATTR_") != std::string::npos)
            continue;
        for (const char *m : kEmits) {
            // Receiver-qualified call: `x->m(` or `x.m(`. Bare `m(`
            // is the macro's second argument — already guarded.
            for (std::size_t pos = line.find(m);
                 pos != std::string::npos;
                 pos = line.find(m, pos + 1)) {
                const bool dot = pos >= 1 && line[pos - 1] == '.';
                const bool arrow = pos >= 2 &&
                                   line[pos - 2] == '-' &&
                                   line[pos - 1] == '>';
                if (!dot && !arrow)
                    continue;
                std::size_t j = pos + std::string(m).size();
                if (j < line.size() && isWordChar(line[j]))
                    continue;
                while (j < line.size() &&
                       std::isspace((unsigned char)line[j]))
                    ++j;
                if (j >= line.size() || line[j] != '(')
                    continue;
                ctx.report(f, int(li) + 1, "attr-macro",
                           std::string("raw AttributionHub::") + m +
                               " outside src/obs: wrap in "
                               "FLEETIO_ATTR_EVENT(hub, " + m +
                               "(...)) or FLEETIO_ATTR_SCOPE so it "
                               "null-guards and compiles out");
            }
        }
    }
}

// ------------------------------------------------- bad suppressions

void
checkSuppressions(Ctx &ctx, FileInfo &f)
{
    static const std::set<std::string> kIds = [] {
        std::set<std::string> s;
        for (const RuleInfo &r : kRules)
            s.insert(r.id);
        return s;
    }();
    for (auto &[line, allows] : f.allows) {
        for (const Suppress &s : allows) {
            if (!s.has_reason) {
                ctx.result.violations.push_back(
                    {"suppression", f.rel, line,
                     "allow(" + s.rule +
                         ") without a reason: write `// fleetio-lint: "
                         "allow(" + s.rule + "): <why>`"});
            } else if (!kIds.count(s.rule)) {
                ctx.result.violations.push_back(
                    {"suppression", f.rel, line,
                     "allow(" + s.rule + ") names an unknown rule"});
            }
        }
    }
}

}  // namespace

// ---------------------------------------------------------- public API

const std::vector<RuleInfo> &
rules()
{
    return kRules;
}

bool
fixHeaderGuard(std::string &text)
{
    std::vector<std::string> lines = splitLines(text);
    const std::string code_text = stripCode(text);
    std::vector<std::string> code = splitLines(code_text);
    while (code.size() < lines.size())
        code.push_back("");

    /** Exact directive token of line li ("" when not a directive);
     *  when @p arg is non-null, also the first argument token. */
    auto directive = [&](std::size_t li,
                         std::string *arg) -> std::string {
        const std::string &line = code[li];
        std::size_t p = line.find_first_not_of(" \t");
        if (p == std::string::npos || line[p] != '#')
            return "";
        p = line.find_first_not_of(" \t", p + 1);
        if (p == std::string::npos)
            return "";
        std::size_t e = p;
        while (e < line.size() && isWordChar(line[e]))
            ++e;
        const std::string name = line.substr(p, e - p);
        if (arg) {
            const std::size_t a = line.find_first_not_of(" \t", e);
            if (a == std::string::npos) {
                arg->clear();
            } else {
                std::size_t ae = a;
                while (ae < line.size() && isWordChar(line[ae]))
                    ++ae;
                *arg = line.substr(a, ae - a);
            }
        }
        return name;
    };

    // Find `#ifndef G` whose next non-blank line is `#define G`.
    std::size_t guard_if = lines.size();
    std::size_t guard_def = lines.size();
    for (std::size_t li = 0; li < lines.size(); ++li) {
        std::string name;
        const std::string d = directive(li, &name);
        if (d == "pragma" &&
            code[li].find("once") != std::string::npos)
            return false;  // already converted
        if (d == "ifndef" && !name.empty()) {
            for (std::size_t dj = li + 1; dj < lines.size(); ++dj) {
                if (code[dj].find_first_not_of(" \t") ==
                    std::string::npos)
                    continue;
                std::string dname;
                if (directive(dj, &dname) == "define" &&
                    dname == name) {
                    guard_if = li;
                    guard_def = dj;
                }
                break;
            }
            break;  // only the first #ifndef can be the guard
        }
        if (d == "if" || d == "ifdef" || d == "include")
            break;  // real code before any guard
    }
    if (guard_if == lines.size())
        return false;

    // Find the matching #endif by depth.
    int depth = 1;
    std::size_t guard_end = lines.size();
    for (std::size_t li = guard_def + 1; li < lines.size(); ++li) {
        const std::string d = directive(li, nullptr);
        if (d == "if" || d == "ifdef" || d == "ifndef")
            ++depth;
        else if (d == "endif" && --depth == 0) {
            guard_end = li;
            break;
        }
    }
    if (guard_end == lines.size())
        return false;

    lines[guard_if] = "#pragma once";
    lines.erase(lines.begin() + guard_end);
    lines.erase(lines.begin() + guard_def);
    // Drop a blank line left dangling at EOF by the guard removal.
    while (!lines.empty() &&
           lines.back().find_first_not_of(" \t") == std::string::npos)
        lines.pop_back();

    std::string out;
    for (const std::string &l : lines) {
        out += l;
        out += '\n';
    }
    text = out;
    return true;
}

Result
runLint(const std::string &root, const Options &opts)
{
    Ctx ctx;
    ctx.root = fs::path(root);
    ctx.opts = opts;
    collectFiles(ctx);

    for (FileInfo &f : ctx.files) {
        if (ctx.ruleEnabled("nondeterminism"))
            checkNondeterminism(ctx, f);
        if (ctx.ruleEnabled("hotpath"))
            checkHotPath(ctx, f);
        if (ctx.ruleEnabled("trace-macro"))
            checkTraceMacro(ctx, f);
        if (ctx.ruleEnabled("header-hygiene"))
            checkHeaderHygiene(ctx, f);
        if (ctx.ruleEnabled("build-registration"))
            checkBuildRegistration(ctx, f);
        if (ctx.ruleEnabled("journal-api"))
            checkJournalApi(ctx, f);
        if (ctx.ruleEnabled("attr-macro"))
            checkAttrMacro(ctx, f);
    }
    if (ctx.ruleEnabled("layering"))
        checkLayering(ctx);
    for (FileInfo &f : ctx.files)
        checkSuppressions(ctx, f);

    std::sort(ctx.result.violations.begin(),
              ctx.result.violations.end(),
              [](const Violation &a, const Violation &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return std::move(ctx.result);
}

void
writeHuman(std::ostream &os, const Result &r)
{
    for (const Violation &v : r.violations) {
        os << v.file << ":" << v.line << ": [" << v.rule << "] "
           << v.message << "\n";
    }
    os << (r.clean() ? "fleetio-lint: clean" : "fleetio-lint: FAILED")
       << " (" << r.files_scanned << " files, "
       << r.violations.size() << " violation"
       << (r.violations.size() == 1 ? "" : "s") << ", "
       << r.suppressions_used << " suppression"
       << (r.suppressions_used == 1 ? "" : "s") << " used";
    if (!r.fixed_files.empty())
        os << ", " << r.fixed_files.size() << " files fixed";
    os << ")\n";
}

namespace {

std::string
jsonEscaped(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

void
writeJson(std::ostream &os, const Result &r, const std::string &root)
{
    os << "{\n  \"schema\": \"fleetio-lint-v1\",\n  \"root\": \""
       << jsonEscaped(root) << "\",\n  \"files_scanned\": "
       << r.files_scanned << ",\n  \"suppressions_used\": "
       << r.suppressions_used << ",\n  \"violations\": [";
    for (std::size_t i = 0; i < r.violations.size(); ++i) {
        const Violation &v = r.violations[i];
        os << (i ? "," : "") << "\n    {\"rule\": \""
           << jsonEscaped(v.rule) << "\", \"file\": \""
           << jsonEscaped(v.file) << "\", \"line\": " << v.line
           << ", \"message\": \"" << jsonEscaped(v.message) << "\"}";
    }
    os << (r.violations.empty() ? "]" : "\n  ]") << ",\n  \"fixed\": [";
    for (std::size_t i = 0; i < r.fixed_files.size(); ++i) {
        os << (i ? ", " : "") << "\"" << jsonEscaped(r.fixed_files[i])
           << "\"";
    }
    os << "]\n}\n";
}

}  // namespace fleetio::lint
