/**
 * @file
 * fleetio-analyze CLI. Exit codes: 0 clean, 1 violations, 2 usage
 * error — mirrors the fleetio-lint driver so CI treats both alike.
 */
#include <cstring>
#include <iostream>
#include <string>

#include "tools/fleetio_lint/analyze.h"

namespace {

void
usage(std::ostream &os)
{
    os << "usage: fleetio_analyze [--root DIR] [--json]\n"
          "                       [--rule ID]... [--dir DIR]...\n"
          "                       [--hot-root Cls::method]...\n"
          "                       [--list-rules]\n"
          "\n"
          "Semantic (call-graph-aware) checks over the FleetIO\n"
          "tree: R9 lock-discipline, R10 hot-alloc, R11\n"
          "determinism-taint. See DESIGN.md section 14.\n";
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    bool json = false;
    fleetio::analyze::Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (a == "--json") {
            json = true;
        } else if (a == "--rule" && i + 1 < argc) {
            opts.rules.push_back(argv[++i]);
        } else if (a == "--dir" && i + 1 < argc) {
            opts.scan_dirs.push_back(argv[++i]);
        } else if (a == "--hot-root" && i + 1 < argc) {
            opts.hot_roots.push_back(argv[++i]);
        } else if (a == "--list-rules") {
            for (const auto &r : fleetio::analyze::rules())
                std::cout << r.id << " (" << r.issue_tag << "): "
                          << r.summary << "\n";
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "fleetio_analyze: unknown argument '" << a
                      << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    const fleetio::analyze::Result r =
        fleetio::analyze::runAnalyze(root, opts);
    if (json)
        fleetio::analyze::writeJson(std::cout, r, root);
    else
        fleetio::analyze::writeHuman(std::cout, r);
    return r.clean() ? 0 : 1;
}
