/**
 * @file
 * fleetio-analyze: the semantic companion to fleetio-lint (DESIGN.md
 * §14). Where lint.{h,cc} is a token/regex pass over single files,
 * this pass parses the stripped sources into a lightweight IR — a
 * per-file symbol table (classes, fields, methods, free functions), a
 * tree-wide call graph with name+scope resolution (virtual and
 * InlineFunction/std::function call sites conservatively widened),
 * and a mutex-annotation map (src/core/thread_annotations.h) — and
 * runs three interprocedural rule families:
 *
 *  - lock-discipline    (R9)  every access to a FLEETIO_GUARDED_BY(m)
 *                             field holds m; FLEETIO_REQUIRES(m)
 *                             propagates to callers; FLEETIO_EXCLUDES
 *                             rejects re-entrant locking; confined
 *                             classes own no sync primitives
 *  - hot-alloc          (R10) no new/malloc/std::function/
 *                             make_unique/make_shared or unreserved
 *                             vector growth in any function reachable
 *                             from the EventQueue dispatch,
 *                             IoScheduler::submit, or FTL read/write
 *                             entry points (full call chain reported)
 *  - determinism-taint  (R11) wall clock, std::random_device,
 *                             unordered-container iteration, and
 *                             pointer-keyed ordering must not flow
 *                             into ExperimentResult, trace/metric
 *                             emission, or agent decisions
 *
 * Suppressions: `// fleetio-analyze: allow(<rule>): <reason>` with the
 * same placement semantics as fleetio-lint (trailing comment = own
 * line; comment-only line = next code line). R10 anchors at the
 * allocation site, R11 at the taint source, R9 at the offending
 * access or call. Reason-less allows are violations.
 */
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fleetio::analyze {

struct Violation
{
    std::string rule;  ///< "lock-discipline" | "hot-alloc" | "determinism-taint"
    std::string file;  ///< path relative to the scanned root
    int line = 0;      ///< 1-based
    std::string message;
};

struct Options
{
    /** Run only these rule ids (empty = every rule). */
    std::vector<std::string> rules;

    /**
     * Hot-path roots as "Class::method" or free-function names
     * (empty = the FleetIO defaults: EventQueue dispatch,
     * IoScheduler::submit, FTL read/write entry points).
     */
    std::vector<std::string> hot_roots;

    /** Directories under the root to parse (empty = {"src"}). */
    std::vector<std::string> scan_dirs;
};

/**
 * One function node of the IR: a method, free function, or lambda
 * (lambdas are their own nodes — "Cls::method::<lambda@N>" — so an
 * escaped callback's body is reachable through indirect calls without
 * dragging the whole enclosing function in).
 */
struct FunctionNode
{
    std::string id;    ///< unique: "Cls::name/arity#k" (see makeId)
    std::string cls;   ///< owning class, "" for free functions
    std::string name;  ///< unqualified name
    std::string file;
    int line = 0;
    int arity_min = 0;      ///< params without defaults
    int arity_max = 0;      ///< all params
    bool is_virtual = false;
    bool is_defined = false;   ///< has a body we parsed
    bool escaped_callback = false;  ///< lambda bound to a callback param
    std::vector<std::string> requires_locks;  ///< FLEETIO_REQUIRES args
    std::vector<std::string> excludes_locks;  ///< FLEETIO_EXCLUDES args
    std::vector<std::string> locks_held;      ///< lock_guard'd mutexes
};

struct CallEdge
{
    std::string caller;  ///< FunctionNode::id
    std::string callee;  ///< FunctionNode::id
    int line = 0;        ///< call-site line in the caller's file
    bool widened = false;  ///< conservative (virtual/indirect) edge
};

struct Result
{
    std::vector<Violation> violations;  ///< sorted by (file, line, rule)
    std::size_t files_scanned = 0;
    std::size_t suppressions_used = 0;

    // IR exposure for the call-graph tests and --dump-callgraph.
    std::vector<FunctionNode> functions;
    std::vector<CallEdge> edges;
    std::set<std::string> hot_reachable;  ///< FunctionNode ids (R10 set)

    bool clean() const { return violations.empty(); }

    /** First function whose id starts with "<qualified>/" (or equals
     *  @p qualified), e.g. lookup("EventQueue::step"). nullptr when
     *  absent. */
    const FunctionNode *lookup(const std::string &qualified) const;

    /** True when some hot_reachable id starts with "<qualified>/". */
    bool hotReachable(const std::string &qualified) const;

    /** Resolved callee ids of every call site in @p qualified. */
    std::vector<std::string>
    calleesOf(const std::string &qualified) const;
};

struct RuleInfo
{
    const char *id;
    const char *issue_tag;  ///< "R9".."R11"
    const char *summary;
};

/** The rule registry, in R9..R11 order. */
const std::vector<RuleInfo> &rules();

/** Parse + analyze the tree under @p root. */
Result runAnalyze(const std::string &root, const Options &opts = {});

/** `file:line: [rule] message` lines plus a summary line. */
void writeHuman(std::ostream &os, const Result &r);

/** Machine-readable "fleetio-analyze-v1" record (per-rule counts,
 *  violations, IR sizes) for CI artifact trend inspection. */
void writeJson(std::ostream &os, const Result &r,
               const std::string &root);

}  // namespace fleetio::analyze
