#include "tools/fleetio_lint/source_model.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace fleetio::srcmodel {

bool
isWordChar(char c)
{
    return std::isalnum((unsigned char)c) || c == '_';
}

namespace {

/**
 * At @p quote (position of a '"'), decide whether the literal is a raw
 * string: the quote is preceded by 'R', optionally preceded by an
 * encoding prefix (u8, u, U, L), and whatever precedes *that* is not
 * an identifier character (so `FOOR"x"` is an identifier followed by
 * an ordinary string, but `u8R"(x)"` is raw).
 */
bool
isRawStringQuote(const std::string &text, std::size_t quote)
{
    if (quote == 0 || text[quote - 1] != 'R')
        return false;
    std::size_t r = quote - 1;  // position of 'R'
    if (r >= 2 && text[r - 2] == 'u' && text[r - 1] == '8')
        r -= 2;
    else if (r >= 1 && (text[r - 1] == 'u' || text[r - 1] == 'U' ||
                        text[r - 1] == 'L'))
        r -= 1;
    return r == 0 || !isWordChar(text[r - 1]);
}

/** A backslash-newline splice ends at @p nl (position of '\n'). */
bool
splicedNewline(const std::string &text, std::size_t nl)
{
    if (nl >= 1 && text[nl - 1] == '\\')
        return true;
    return nl >= 2 && text[nl - 1] == '\r' && text[nl - 2] == '\\';
}

}  // namespace

std::string
stripCode(const std::string &text)
{
    enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
    std::string out = text;
    St st = St::kCode;
    std::string raw_delim;  // for R"delim( ... )delim"
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::kCode:
            if (c == '/' && n == '/') {
                st = St::kLine;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::kBlock;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"' && isRawStringQuote(text, i)) {
                // R"delim( — capture delim up to the '('. A missing
                // '(' (ill-formed source) degrades to an ordinary
                // string so the state machine never wedges.
                std::size_t j = i + 1;
                raw_delim.clear();
                while (j < text.size() && text[j] != '(' &&
                       text[j] != '"' && text[j] != '\n' &&
                       raw_delim.size() < 16)
                    raw_delim += text[j++];
                if (j < text.size() && text[j] == '(') {
                    st = St::kRaw;
                    i = j;  // keep prefix visible; blank the body
                } else {
                    st = St::kStr;
                }
            } else if (c == '"') {
                st = St::kStr;
            } else if (c == '\'') {
                // A quote straight after an identifier/number char is
                // a digit separator (1'000'000), not a char literal.
                if (i == 0 || !isWordChar(text[i - 1]))
                    st = St::kChar;
            }
            break;
        case St::kLine:
            if (c == '\n') {
                // A backslash continuation splices the next physical
                // line into the comment (the preprocessor sees one
                // logical line); the newline itself is preserved.
                if (!splicedNewline(text, i))
                    st = St::kCode;
            } else {
                out[i] = ' ';
            }
            break;
        case St::kBlock:
            if (c == '*' && n == '/') {
                st = St::kCode;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case St::kStr:
            if (c == '\\' && n != '\0') {
                out[i] = ' ';
                if (n != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                st = St::kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case St::kChar:
            if (c == '\\' && n != '\0') {
                out[i] = ' ';
                if (n != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                st = St::kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case St::kRaw: {
            const std::string close = ")" + raw_delim + "\"";
            if (text.compare(i, close.size(), close) == 0) {
                st = St::kCode;
                i += close.size() - 1;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

bool
containsWord(const std::string &hay, const std::string &needle)
{
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + 1)) {
        const bool left_ok = pos == 0 || !isWordChar(hay[pos - 1]);
        const std::size_t end = pos + needle.size();
        const bool right_ok =
            end >= hay.size() || !isWordChar(hay[end]);
        if (left_ok && right_ok)
            return true;
    }
    return false;
}

bool
callLike(const std::string &line, const std::string &name)
{
    for (std::size_t pos = line.find(name); pos != std::string::npos;
         pos = line.find(name, pos + 1)) {
        if (pos > 0 && isWordChar(line[pos - 1]))
            continue;
        std::size_t j = pos + name.size();
        while (j < line.size() &&
               std::isspace((unsigned char)line[j]))
            ++j;
        if (j < line.size() && line[j] == '(')
            return true;
    }
    return false;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << text;
    return bool(out);
}

std::map<int, std::vector<Suppress>>
parseAllows(const std::vector<std::string> &raw,
            const std::vector<std::string> &code,
            const std::string &tag)
{
    std::map<int, std::vector<Suppress>> allows;
    for (std::size_t li = 0; li < raw.size(); ++li) {
        const std::string &line = raw[li];
        std::size_t pos = line.find(tag);
        while (pos != std::string::npos) {
            std::size_t p = line.find("allow(", pos);
            if (p == std::string::npos)
                break;
            p += 6;
            const std::size_t close = line.find(')', p);
            if (close == std::string::npos)
                break;
            Suppress s;
            s.rule = line.substr(p, close - p);
            // Anything but a kebab-case rule id (e.g. "allow(<id>)"
            // in prose or code that *talks about* suppressions) is
            // not a suppression attempt.
            const bool id_like =
                !s.rule.empty() &&
                std::all_of(s.rule.begin(), s.rule.end(), [](char c) {
                    return std::islower((unsigned char)c) ||
                           std::isdigit((unsigned char)c) || c == '-';
                });
            if (!id_like) {
                pos = line.find(tag, close);
                continue;
            }
            // Mandatory reason: "): <non-empty text>".
            std::size_t r = close + 1;
            while (r < line.size() &&
                   std::isspace((unsigned char)line[r]))
                ++r;
            if (r < line.size() && line[r] == ':') {
                ++r;
                while (r < line.size() &&
                       std::isspace((unsigned char)line[r]))
                    ++r;
                s.has_reason = r < line.size();
            }
            auto blank = [&](std::size_t lj) {
                const std::string &c = code[lj];
                return std::all_of(c.begin(), c.end(), [](char ch) {
                    return std::isspace((unsigned char)ch);
                });
            };
            std::size_t target = li;
            if (li < code.size() && blank(li)) {
                target = li + 1;
                while (target + 1 < code.size() && blank(target))
                    ++target;
            }
            allows[int(target) + 1].push_back(s);
            pos = line.find(tag, close);
        }
    }
    return allows;
}

}  // namespace fleetio::srcmodel
