/**
 * @file
 * Shared source-model layer for the FleetIO developer checks: the
 * comment/string-stripping lexer, word/call matchers, inline
 * suppression parsing, and file I/O used by both fleetio-lint
 * (token/regex pass, lint.{h,cc}) and fleetio-analyze (semantic pass,
 * analyze.{h,cc}). Dependency-free — std:: only.
 *
 * Lexer guarantees (regression-tested in tests/test_source_model.cc):
 *  - stripCode() preserves byte length and every line break, so
 *    (line, column) positions survive stripping;
 *  - raw string literals, including encoding-prefixed forms
 *    (R"(..)", u8R"(..)", uR/UR/LR"(..)") and custom delimiters
 *    (R"x(..)x"), are blanked without desynchronizing the state
 *    machine even when the body contains //, /'*, quotes or both;
 *  - a backslash line-continuation extends a // comment onto the next
 *    physical line, exactly as the preprocessor splices it;
 *  - digit separators (1'000'000) are not char literals.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

namespace fleetio::srcmodel {

/** True for [A-Za-z0-9_]. */
bool isWordChar(char c);

/**
 * Blank out comment bodies and string/char literal contents so pattern
 * matching never fires inside them. Length- and newline-preserving.
 */
std::string stripCode(const std::string &text);

/** Split on '\n'; a trailing fragment without a newline is kept. */
std::vector<std::string> splitLines(const std::string &text);

/** Find @p needle at a word boundary (both ends) in @p hay. */
bool containsWord(const std::string &hay, const std::string &needle);

/** Match `name (` at a word boundary, e.g. callLike(line, "rand"). */
bool callLike(const std::string &line, const std::string &name);

/** Slurp @p path into @p out. @return false on open failure. */
bool readFile(const std::string &path, std::string &out);

/** Overwrite @p path with @p text. @return false on open failure. */
bool writeFile(const std::string &path, const std::string &text);

/**
 * One parsed inline suppression: `<tag> allow(<rule>): <reason>`.
 * A trailing comment suppresses its own line; a comment-only line
 * suppresses the next code line (skipping the rest of the comment
 * block and blank lines).
 */
struct Suppress
{
    std::string rule;
    bool has_reason = false;
    bool used = false;
};

/**
 * Parse every suppression comment bearing @p tag (e.g. "fleetio-lint:"
 * or "fleetio-analyze:") out of a file. @p raw are the raw lines,
 * @p code the stripped lines (same count). Keys are 1-based line
 * numbers of the *suppressed* line.
 */
std::map<int, std::vector<Suppress>>
parseAllows(const std::vector<std::string> &raw,
            const std::vector<std::string> &code,
            const std::string &tag);

}  // namespace fleetio::srcmodel
