/**
 * @file
 * fleetio-analyze implementation. Pipeline: stripCode (shared lexer,
 * source_model.h) -> tokenize -> per-file scope parse into an IR of
 * classes/fields/functions/call-sites -> tree-wide merge + name
 * resolution into a call graph -> the three interprocedural rule
 * families (R9 lock-discipline, R10 hot-alloc, R11 determinism-taint).
 *
 * The parser is a deliberately lightweight recursive-descent pass over
 * the token stream — no preprocessor expansion, no templates, no type
 * checking. Where it cannot resolve a call it either *widens* (edges
 * to every same-named candidate, marked CallEdge::widened) or *skips*
 * (known std:: container/utility method names on unresolved
 * receivers, which would otherwise wire every `v.size()` to every
 * class with a size() method). Widened edges count for R10
 * reachability (allocation on ANY possible callee is a finding) but
 * not for R9 REQUIRES / R11 taint propagation (those must not jump
 * between unrelated classes that merely share a method name).
 */
#include "tools/fleetio_lint/analyze.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <ostream>
#include <sstream>
#include <tuple>

#include "tools/fleetio_lint/source_model.h"

namespace fs = std::filesystem;
namespace sm = fleetio::srcmodel;

namespace fleetio::analyze {
namespace {

// ------------------------------------------------------------ tokens

struct Token
{
    std::string text;
    int line = 0;  ///< 1-based
};

bool
isIdentStart(char c)
{
    return std::isalpha((unsigned char)c) || c == '_';
}

/**
 * Tokenize stripped source text. Preprocessor lines (including
 * backslash continuations) are dropped wholesale; string/char literal
 * *contents* are already blanked by stripCode, so we only need to hop
 * from the opening quote to the closing one. `::` and `->` are fused
 * into single tokens; everything else is an identifier, a number, or
 * one punctuation character.
 */
std::vector<Token>
tokenize(const std::string &text)
{
    std::vector<Token> toks;
    int line = 1;
    bool at_line_start = true;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            at_line_start = true;
            continue;
        }
        if (std::isspace((unsigned char)c))
            continue;
        if (c == '#' && at_line_start) {
            // Directive: swallow to end of logical line.
            while (i < text.size()) {
                if (text[i] == '\n') {
                    std::size_t nl = i;
                    bool spliced =
                        (nl >= 1 && text[nl - 1] == '\\') ||
                        (nl >= 2 && text[nl - 1] == '\r' &&
                         text[nl - 2] == '\\');
                    ++line;
                    if (!spliced)
                        break;
                }
                ++i;
            }
            at_line_start = true;
            continue;
        }
        at_line_start = false;
        if (c == '"') {
            // Contents are blanks; find the closing quote (raw-string
            // delimiters were left visible but contain no quotes).
            ++i;
            while (i < text.size() && text[i] != '"') {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            toks.push_back({"\"\"", line});
            continue;
        }
        if (c == '\'' &&
            (i == 0 || !sm::isWordChar(text[i - 1]))) {
            ++i;
            while (i < text.size() && text[i] != '\'') {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            toks.push_back({"''", line});
            continue;
        }
        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < text.size() && sm::isWordChar(text[j]))
                ++j;
            toks.push_back({text.substr(i, j - i), line});
            i = j - 1;
            continue;
        }
        if (std::isdigit((unsigned char)c)) {
            std::size_t j = i;
            while (j < text.size() &&
                   (sm::isWordChar(text[j]) || text[j] == '.' ||
                    text[j] == '\''))
                ++j;
            toks.push_back({text.substr(i, j - i), line});
            i = j - 1;
            continue;
        }
        if (c == ':' && i + 1 < text.size() && text[i + 1] == ':') {
            toks.push_back({"::", line});
            ++i;
            continue;
        }
        if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
            toks.push_back({"->", line});
            ++i;
            continue;
        }
        toks.push_back({std::string(1, c), line});
    }
    return toks;
}

// ---------------------------------------------------------------- IR

struct Param
{
    std::string type;  ///< tokens joined with ' '
    std::string name;
    bool has_default = false;
};

struct Site
{
    std::string kind;
    std::string detail;
    int line = 0;
};

struct CallRec
{
    std::string recv;  ///< `recv.name(` / `recv->name(`, "" if none
    std::string qual;  ///< `qual::name(`, "" if none
    std::string name;
    int argc = 0;
    int line = 0;
};

/** Lambda escape universes (which indirect call sites can reach it). */
enum Universe
{
    kNotEscaped = 0,
    kInline = 1,  ///< bound to an InlineFunction/Callback parameter
    kStdFn = 2,   ///< bound to a std::function parameter
    kBoth = 3,    ///< binding target unresolved — assume either
};

struct FnInfo
{
    FunctionNode node;
    std::vector<Param> params;
    std::map<std::string, int> idents;  ///< body ident -> first line
    std::vector<CallRec> calls;
    std::vector<Site> allocs;  ///< R10 sites
    std::vector<Site> taints;  ///< R11 sources
    std::map<std::string, std::string> local_types;
    std::set<std::string> reserved;  ///< receivers reserve()/resize()d
    std::set<std::string> growth_recvs;
    bool is_ctor = false;
    bool is_dtor = false;
    int encloser = -1;  ///< enclosing FnInfo index (lambdas only)
    int universe = kNotEscaped;
    // Unresolved lambda binding: the call it was an argument of.
    std::string bind_call_name, bind_call_qual, bind_call_recv;
    int bind_arg = -1;
    std::string bind_var_type;  ///< or: type of the assigned variable
    std::string bind_var;       ///< assigned variable (type unknown)
    std::vector<std::string> out_quals;  ///< out-of-line A::B:: path
};

struct FieldInfo
{
    std::string type;        ///< tokens joined with ' '
    std::string guarded_by;  ///< FLEETIO_GUARDED_BY arg, "" if none
    int line = 0;
};

struct ClassInfo
{
    std::string name;  ///< qualified by class nesting, e.g. "A::B"
    std::string file;
    int line = 0;
    bool confined = false;  ///< FLEETIO_THREAD_CONFINED
    std::map<std::string, FieldInfo> fields;
};

struct FileIR
{
    std::string rel;
    std::map<int, std::vector<sm::Suppress>> allows;
};

struct Model
{
    std::vector<FnInfo> fns;
    std::map<std::string, ClassInfo> classes;
    std::map<std::string, std::string> aliases;  ///< using X = ...
    std::set<std::string> amp_names;  ///< `&ident` seen (addr-taken)
    std::vector<FileIR> files;
};

const std::set<std::string> &
keywordSet()
{
    static const std::set<std::string> k = {
        "if",       "for",      "while",     "switch",   "return",
        "sizeof",   "alignof",  "alignas",   "catch",    "throw",
        "new",      "delete",   "decltype",  "typeid",   "noexcept",
        "static_assert", "assert", "case",   "default",  "do",
        "else",     "goto",     "co_await",  "co_return"};
    return k;
}

/**
 * std:: container/utility method names skipped when the receiver type
 * is unknown — resolving these by bare name would wire every
 * `vec.size()` call to every class that happens to define size().
 */
const std::set<std::string> &
stdSkipSet()
{
    static const std::set<std::string> k = {
        "size",      "empty",     "begin",      "end",
        "cbegin",    "cend",      "rbegin",     "rend",
        "clear",     "push",      "pop",        "push_back",
        "pop_back",  "push_front", "pop_front", "emplace",
        "emplace_back", "emplace_front", "emplace_hint",
        "front",     "back",      "top",        "find",
        "count",     "contains",  "erase",      "insert",
        "at",        "reset",     "get",        "release",
        "data",      "c_str",     "str",        "first",
        "second",    "lock",      "unlock",     "try_lock",
        "wait",      "wait_for",  "notify_one", "notify_all",
        "load",      "store",     "exchange",   "fetch_add",
        "swap",      "resize",    "reserve",    "substr",
        "length",    "min",       "max",        "abs",
        "move",      "forward",   "make_pair",  "make_tuple",
        "to_string", "tie",       "assign",     "value",
        "has_value", "value_or",  "lower_bound", "upper_bound",
        "capacity",  "shrink_to_fit", "fill",   "join",
        "joinable",  "detach",    "good",       "fail",
        "is_open",   "open",      "close",      "flush",
        "write",     "read",      "rdbuf",      "setf",
        "precision", "getline",   "put",        "seekg",
        "tellg"};
    return k;
}

std::string
joinTokens(const std::vector<Token> &toks, std::size_t b,
           std::size_t e)
{
    std::string out;
    for (std::size_t i = b; i < e && i < toks.size(); ++i) {
        if (!out.empty())
            out += ' ';
        out += toks[i].text;
    }
    return out;
}

// ------------------------------------------------------------ parser

class Parser
{
public:
    Parser(Model &m, std::string rel, std::vector<Token> toks)
        : m_(m), rel_(std::move(rel)), t_(std::move(toks))
    {
    }

    void run() { parseScope(0, t_.size(), ""); }

private:
    Model &m_;
    std::string rel_;
    std::vector<Token> t_;

    const std::string &tx(std::size_t i) const
    {
        static const std::string empty;
        return i < t_.size() ? t_[i].text : empty;
    }
    int ln(std::size_t i) const
    {
        return i < t_.size() ? t_[i].line
                             : (t_.empty() ? 0 : t_.back().line);
    }

    /** i at an opening bracket; return index just past its match. */
    std::size_t skipBalanced(std::size_t i, std::size_t end)
    {
        const std::string open = tx(i);
        std::string close = open == "(" ? ")"
                          : open == "{" ? "}"
                          : open == "[" ? "]" : "";
        if (close.empty())
            return i + 1;
        int depth = 0;
        for (; i < end; ++i) {
            if (tx(i) == open)
                ++depth;
            else if (tx(i) == close && --depth == 0)
                return i + 1;
        }
        return end;
    }

    /** i just past a '<'; skip a balanced template argument list.
     *  Returns index past the closing '>', or @p i when it does not
     *  look like one (bails at ';', '{', '}'). */
    std::size_t skipAngles(std::size_t i, std::size_t end)
    {
        int depth = 1;
        std::size_t j = i;
        while (j < end && depth > 0) {
            const std::string &s = tx(j);
            if (s == "<")
                ++depth;
            else if (s == ">")
                --depth;
            else if (s == ";" || s == "{" || s == "}")
                return i;
            else if (s == "(" || s == "[")
                j = skipBalanced(j, end) - 1;
            ++j;
        }
        return depth == 0 ? j : i;
    }

    void parseScope(std::size_t i, std::size_t end,
                    const std::string &cls);
    std::size_t parseClassHead(std::size_t i, std::size_t end,
                               const std::string &outer);
    std::size_t parseDeclaration(std::size_t i, std::size_t end,
                                 const std::string &cls);
    std::size_t parseBody(std::size_t i, std::size_t end, int fn);
    int newLambda(int encloser, int line);
    void recordLocalDecl(FnInfo &f, std::size_t name_idx);
    std::string typeEndingAt(std::size_t name_idx);
};

void
Parser::parseScope(std::size_t i, std::size_t end,
                   const std::string &cls)
{
    while (i < end) {
        const std::string &s = tx(i);
        if (s == "}") {
            ++i;
            continue;  // scope close handled by caller's extent
        }
        if (s == ";" || s == "public" || s == "private" ||
            s == "protected" || s == ":") {
            ++i;
            continue;
        }
        if (s == "namespace") {
            ++i;
            while (i < end && tx(i) != "{" && tx(i) != ";")
                ++i;
            if (i < end && tx(i) == "{") {
                std::size_t close = skipBalanced(i, end);
                parseScope(i + 1, close - 1, cls);
                i = close;
            } else {
                ++i;
            }
            continue;
        }
        if (s == "template") {
            ++i;
            if (i < end && tx(i) == "<")
                i = skipAngles(i + 1, end);
            continue;
        }
        if (s == "using" || s == "typedef") {
            // `using X = ...;` -> alias (recorded bare and
            // class-qualified); anything else just skipped.
            std::size_t semi = i;
            while (semi < end && tx(semi) != ";")
                ++semi;
            if (s == "using" && i + 2 < semi && tx(i + 2) == "=") {
                const std::string def =
                    joinTokens(t_, i + 3, semi);
                m_.aliases[tx(i + 1)] = def;
                if (!cls.empty())
                    m_.aliases[cls + "::" + tx(i + 1)] = def;
            }
            i = semi + 1;
            continue;
        }
        if (s == "enum") {
            std::size_t j = i + 1;
            while (j < end && tx(j) != "{" && tx(j) != ";")
                ++j;
            if (j < end && tx(j) == "{")
                j = skipBalanced(j, end);
            while (j < end && tx(j) != ";")
                ++j;
            i = j + 1;
            continue;
        }
        if ((s == "class" || s == "struct" || s == "union")) {
            // Definition (has '{' before ';'/'(') or elaborated use?
            std::size_t j = i + 1;
            while (j < end && tx(j) != "{" && tx(j) != ";" &&
                   tx(j) != "(" && tx(j) != "=")
                ++j;
            if (j < end && tx(j) == "{") {
                i = parseClassHead(i, end, cls);
                continue;
            }
            // Forward decl or elaborated type in a declaration —
            // fall through to the declaration collector.
        }
        i = parseDeclaration(i, end, cls);
    }
}

std::size_t
Parser::parseClassHead(std::size_t i, std::size_t end,
                       const std::string &outer)
{
    const int line = ln(i);
    std::size_t brace = i + 1;
    while (brace < end && tx(brace) != "{")
        ++brace;
    // Name: last plain identifier before '{' or the base-clause ':',
    // ignoring `final` and the confinement marker.
    bool confined = false;
    std::string name;
    for (std::size_t j = i + 1; j < brace; ++j) {
        const std::string &s = tx(j);
        if (s == "FLEETIO_THREAD_CONFINED") {
            confined = true;
            continue;
        }
        if (s == ":")
            break;
        if (s == "final" || !isIdentStart(s.empty() ? ' ' : s[0]))
            continue;
        name = s;
    }
    std::size_t close = skipBalanced(brace, end);
    if (name.empty()) {  // anonymous — parse body in outer context
        parseScope(brace + 1, close - 1, outer);
    } else {
        const std::string q =
            outer.empty() ? name : outer + "::" + name;
        ClassInfo &ci = m_.classes[q];
        ci.name = q;
        if (ci.file.empty()) {
            ci.file = rel_;
            ci.line = line;
        }
        ci.confined = ci.confined || confined;
        parseScope(brace + 1, close - 1, q);
    }
    // Consume any declarator + ';' after the class body.
    std::size_t j = close;
    while (j < end && tx(j) != ";" && tx(j) != "}")
        ++j;
    return j < end && tx(j) == ";" ? j + 1 : j;
}

std::size_t
Parser::parseDeclaration(std::size_t i, std::size_t end,
                         const std::string &cls)
{
    // Collect one declaration: everything up to a top-level ';' or a
    // '{' that reads as a function body.
    const std::size_t start = i;
    std::size_t sig_open = 0, sig_close = 0;  // signature parens
    std::string name;
    std::vector<std::string> quals;  // out-of-line A::B:: path
    bool is_dtor = false, in_init_list = false, saw_arrow = false;
    bool body = false;
    std::size_t j = i;
    for (; j < end; ++j) {
        const std::string &s = tx(j);
        if (s == ";")
            break;
        if (s == "}")
            break;  // scope ended mid-decl (tolerate)
        if (s == "[") {
            j = skipBalanced(j, end) - 1;
            continue;
        }
        if (s == "<" && j > start &&
            isIdentStart(tx(j - 1)[0])) {
            std::size_t a = skipAngles(j + 1, end);
            if (a != j + 1) {
                j = a - 1;
                continue;
            }
        }
        if (s == "(") {
            if (sig_open == 0) {
                // Candidate signature: ident right before the paren.
                std::string cand;
                std::vector<std::string> qpath;
                bool dtor = false;
                std::size_t k = j;
                if (k > start &&
                    isIdentStart(tx(k - 1).empty() ? ' '
                                                   : tx(k - 1)[0])) {
                    cand = tx(k - 1);
                    std::size_t q = k - 1;
                    if (q > start && tx(q - 1) == "~") {
                        dtor = true;
                        --q;
                    }
                    while (q >= start + 2 && tx(q - 1) == "::" &&
                           isIdentStart(tx(q - 2)[0])) {
                        qpath.insert(qpath.begin(), tx(q - 2));
                        q -= 2;
                    }
                } else if (k >= start + 3 && tx(k - 3) == "operator" &&
                           tx(k - 2) == "(" && tx(k - 1) == ")") {
                    cand = "operator()";
                }
                // `operator<`, `operator==`, ... : name from the
                // `operator` keyword plus following puncts.
                if (cand.empty())
                    for (std::size_t q = j; q-- > start;) {
                        if (isIdentStart(tx(q)[0])) {
                            if (tx(q) == "operator")
                                cand = "operator" +
                                       joinTokens(t_, q + 1, j);
                            break;
                        }
                    }
                if (!cand.empty() && !keywordSet().count(cand) &&
                    cand.rfind("FLEETIO_", 0) != 0) {
                    name = cand;
                    quals = qpath;
                    is_dtor = dtor;
                    sig_open = j;
                    sig_close = skipBalanced(j, end) - 1;
                    j = sig_close;
                    continue;
                }
            }
            j = skipBalanced(j, end) - 1;
            continue;
        }
        if (s == ":" && sig_open && !in_init_list &&
            tx(j - 1) != ":") {
            in_init_list = true;
            continue;
        }
        if (s == "->" && sig_open)
            saw_arrow = true;
        if (s == "{") {
            const std::string &p = j > start ? tx(j - 1) : tx(start);
            const bool after_qual =
                p == ")" || p == "const" || p == "noexcept" ||
                p == "override" || p == "final" || p == "mutable";
            if (sig_open &&
                (after_qual || saw_arrow ||
                 (in_init_list && (p == "}" || p == ")")))) {
                if (in_init_list && !(p == "}" || p == ")") &&
                    !after_qual) {
                    j = skipBalanced(j, end) - 1;  // init `x_{...}`
                    continue;
                }
                body = true;
                break;
            }
            if (in_init_list || !sig_open) {
                j = skipBalanced(j, end) - 1;  // brace initializer
                continue;
            }
            j = skipBalanced(j, end) - 1;
            continue;
        }
    }
    const std::size_t decl_end = j;

    // Annotation macros anywhere in the declaration.
    auto macroArgs = [&](const char *macro) {
        std::vector<std::string> args;
        for (std::size_t k = start; k < decl_end; ++k) {
            if (tx(k) != macro || tx(k + 1) != "(")
                continue;
            std::size_t close = skipBalanced(k + 1, decl_end + 1);
            std::string last;
            for (std::size_t a = k + 2; a + 1 < close; ++a) {
                if (isIdentStart(tx(a)[0]))
                    last = tx(a);
                if (tx(a) == "," && !last.empty()) {
                    args.push_back(last);
                    last.clear();
                }
            }
            if (!last.empty())
                args.push_back(last);
        }
        return args;
    };

    if (!sig_open || name.empty()) {
        // Field / variable declaration (class scope only).
        if (!cls.empty() && decl_end > start && tx(decl_end) == ";") {
            auto guarded = macroArgs("FLEETIO_GUARDED_BY");
            std::size_t name_at = 0;
            for (std::size_t k = start; k < decl_end; ++k) {
                if (tx(k) == "FLEETIO_GUARDED_BY")
                    break;
                if (tx(k) == "=")
                    break;
                if (tx(k) == "{")
                    break;
                if (isIdentStart(tx(k)[0]) &&
                    !keywordSet().count(tx(k)))
                    name_at = k;
            }
            if (name_at > start) {
                FieldInfo fi;
                fi.type = joinTokens(t_, start, name_at);
                fi.guarded_by = guarded.empty() ? "" : guarded[0];
                fi.line = ln(name_at);
                m_.classes[cls].fields[tx(name_at)] = fi;
                if (m_.classes[cls].name.empty())
                    m_.classes[cls].name = cls;
            }
        }
        return decl_end < end ? decl_end + 1 : end;
    }

    // Function declaration or definition.
    FnInfo f;
    f.node.name = is_dtor ? "~" + name : name;
    f.node.file = rel_;
    f.node.line = ln(sig_open);
    f.out_quals = quals;
    f.node.cls = cls;
    if (!quals.empty()) {
        // Out-of-line definition; the class path is resolved against
        // the registry after all files parse (namespaces stripped).
        std::string qj;
        for (const std::string &q : quals)
            qj += (qj.empty() ? "" : "::") + q;
        f.node.cls = qj;
    }
    for (std::size_t k = start; k < sig_open; ++k)
        if (tx(k) == "virtual")
            f.node.is_virtual = true;
    for (std::size_t k = sig_close; k < decl_end; ++k)
        if (tx(k) == "override" || tx(k) == "final")
            f.node.is_virtual = true;
    f.node.requires_locks = macroArgs("FLEETIO_REQUIRES");
    f.node.excludes_locks = macroArgs("FLEETIO_EXCLUDES");
    f.is_dtor = is_dtor;
    {
        const std::string own =
            f.node.cls.substr(f.node.cls.rfind(':') == std::string::npos
                                  ? 0
                                  : f.node.cls.rfind(':') + 1);
        f.is_ctor = !is_dtor && !f.node.cls.empty() && name == own;
    }

    // Parameters: split the signature parens on top-level commas.
    {
        std::size_t a = sig_open + 1;
        int depth = 0;
        std::size_t item = a;
        auto flush = [&](std::size_t e) {
            if (e <= item)
                return;
            Param p;
            std::size_t name_at = 0;
            for (std::size_t k = item; k < e; ++k) {
                if (tx(k) == "=") {
                    p.has_default = true;
                    e = k;
                    break;
                }
            }
            for (std::size_t k = item; k < e; ++k)
                if (isIdentStart(tx(k)[0]) &&
                    !keywordSet().count(tx(k)))
                    name_at = k;
            if (name_at) {
                p.name = tx(name_at);
                p.type = joinTokens(t_, item, name_at);
            }
            if (p.type.empty()) {  // unnamed param: all tokens = type
                p.type = joinTokens(t_, item, e);
                p.name.clear();
            }
            if (p.type == "void" && p.name.empty())
                return;
            // Param-type words count as mentions (a fn taking an
            // ExperimentResult& is a result sink, R11).
            for (std::size_t k = item; k < e; ++k)
                if (isIdentStart(tx(k)[0]) &&
                    !keywordSet().count(tx(k)))
                    f.idents.emplace(tx(k), ln(k));
            f.params.push_back(p);
        };
        for (std::size_t k = a; k <= sig_close; ++k) {
            const std::string &s = tx(k);
            if (s == "(" || s == "[" || s == "{")
                ++depth;
            else if (s == ")" || s == "]" || s == "}") {
                if (k == sig_close) {
                    flush(k);
                    break;
                }
                --depth;
            } else if (s == "<")
                k = skipAngles(k + 1, sig_close + 1) - 1;
            else if (s == "," && depth == 0) {
                flush(k);
                item = k + 1;
            }
        }
    }
    f.node.arity_max = int(f.params.size());
    for (const Param &p : f.params)
        if (!p.has_default)
            ++f.node.arity_min;
    // `= default` / `= delete` / `= 0` after the signature.
    bool deleted = false;
    for (std::size_t k = sig_close; k < decl_end; ++k)
        if (tx(k) == "=" &&
            (tx(k + 1) == "default" || tx(k + 1) == "delete" ||
             tx(k + 1) == "0"))
            deleted = true;
    (void)deleted;

    const int fi = int(m_.fns.size());
    m_.fns.push_back(std::move(f));
    if (body) {
        m_.fns[fi].node.is_defined = true;
        std::size_t close = parseBody(decl_end, end, fi);
        return close;
    }
    return decl_end < end ? decl_end + 1 : end;
}

int
Parser::newLambda(int encloser, int line)
{
    FnInfo lam;
    const FnInfo &e = m_.fns[encloser];
    lam.node.cls = e.node.cls;
    char buf[32];
    std::snprintf(buf, sizeof buf, "<lambda@%d>", line);
    std::string q = e.node.cls.empty()
                        ? e.node.name
                        : e.node.cls + "::" + e.node.name;
    lam.node.name = q + "::" + buf;
    lam.node.file = rel_;
    lam.node.line = line;
    lam.node.is_defined = true;
    lam.encloser = encloser;
    // A synchronously-invoked lambda runs under whatever locks the
    // encloser holds at creation (cv.wait predicates, std::algorithm
    // comparators). Escaped lambdas get these cleared post-parse.
    lam.node.locks_held = e.node.locks_held;
    const int idx = int(m_.fns.size());
    m_.fns.push_back(std::move(lam));
    return idx;
}

std::string
Parser::typeEndingAt(std::size_t name_idx)
{
    std::size_t k = name_idx;  // exclusive end
    while (k > 0 && (tx(k - 1) == "*" || tx(k - 1) == "&" ||
                     tx(k - 1) == "const"))
        --k;
    if (k == 0)
        return "";
    std::size_t e = k;
    if (tx(k - 1) == ">") {
        int depth = 0;
        while (k > 0) {
            if (tx(k - 1) == ">")
                ++depth;
            else if (tx(k - 1) == "<" && --depth == 0) {
                --k;
                break;
            } else if (tx(k - 1) == ";" || tx(k - 1) == "{" ||
                       tx(k - 1) == "}")
                return "";
            --k;
        }
        if (k == 0 || !isIdentStart(tx(k - 1)[0]))
            return "";
        --k;
    } else if (isIdentStart(tx(k - 1)[0])) {
        --k;
    } else {
        return "";
    }
    // Chain `A :: B` / leading const.
    while (k >= 2 && tx(k - 1) == "::" && isIdentStart(tx(k - 2)[0]))
        k -= 2;
    while (k > 0 && (tx(k - 1) == "const" || tx(k - 1) == "static" ||
                     tx(k - 1) == "constexpr"))
        --k;
    const std::string &head = tx(k);
    if (!isIdentStart(head[0]) || keywordSet().count(head) ||
        head == "else")
        return "";
    // The token *before* the type must start a statement-ish context.
    if (k > 0) {
        const std::string &p = tx(k - 1);
        if (p == "." || p == "->" || p == ")" || p == "]" ||
            isIdentStart(p[0]) || std::isdigit((unsigned char)p[0]))
            return "";
    }
    return joinTokens(t_, k, e);
}

void
Parser::recordLocalDecl(FnInfo &f, std::size_t name_idx)
{
    const std::string &name = tx(name_idx);
    if (keywordSet().count(name) || f.local_types.count(name))
        return;
    const std::string t = typeEndingAt(name_idx);
    if (!t.empty() && t != "return" && t != "auto")
        f.local_types[name] = t;
}

std::size_t
Parser::parseBody(std::size_t i, std::size_t end, int fn)
{
    const std::size_t close = skipBalanced(i, end);
    struct Frame
    {
        std::string recv, qual, name;
        int argc = 0;
        int line = 0;
        int pdepth = 0, cdepth = 0;
    };
    static const std::set<std::string> kTemplateNames = {
        "vector",   "map",        "unordered_map", "set",
        "unordered_set", "deque", "array",         "unique_ptr",
        "shared_ptr", "function", "InlineFunction", "lock_guard",
        "unique_lock", "scoped_lock", "atomic",    "optional",
        "pair",     "tuple",      "span",          "list",
        "priority_queue", "queue", "duration",     "time_point",
        "basic_string", "multimap", "bitset",      "variant"};
    static const std::set<std::string> kClocks = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    std::vector<Frame> frames;
    int pdepth = 0, cdepth = 0;
    FnInfo *f = &m_.fns[fn];
    for (std::size_t j = i + 1; j + 1 < close; ++j) {
        const std::string &s = tx(j);
        if (s == "{") {
            ++cdepth;
            continue;
        }
        if (s == "}") {
            --cdepth;
            continue;
        }
        if (s == "(") {
            ++pdepth;
            // Callee ident right before the paren? Walk back over an
            // explicit template argument list first (make_unique<T>(),
            // std::get<0>(), ...) — bail on anything that cannot
            // appear inside one, so comparisons like `a > (b)` never
            // fabricate a call.
            std::size_t callee = 0;
            if (j > i && isIdentStart(tx(j - 1)[0])) {
                callee = j - 1;
            } else if (j > i + 1 && tx(j - 1) == ">") {
                int adepth = 1;
                for (std::size_t k = j - 1;
                     k-- > i && j - k < 40 && adepth > 0;) {
                    const std::string &a = tx(k);
                    if (a == ">")
                        ++adepth;
                    else if (a == "<")
                        --adepth;
                    else if (!isIdentStart(a[0]) && a != "::" &&
                             a != "," && a != "*" && a != "&")
                        break;
                    if (adepth == 0) {
                        if (k > i && isIdentStart(tx(k - 1)[0]))
                            callee = k - 1;
                        break;
                    }
                }
            }
            if (callee != 0) {
                Frame fr;
                fr.name = tx(callee);
                fr.line = ln(callee);
                fr.pdepth = pdepth;
                fr.cdepth = cdepth;
                fr.argc = tx(j + 1) == ")" ? 0 : 1;
                std::size_t p = callee;
                if (p > i && tx(p - 1) == "::" && p >= 2 &&
                    isIdentStart(tx(p - 2)[0]))
                    fr.qual = tx(p - 2);
                else if (p > i &&
                         (tx(p - 1) == "." || tx(p - 1) == "->") &&
                         p >= 2 && isIdentStart(tx(p - 2)[0]))
                    fr.recv = tx(p - 2);
                frames.push_back(fr);
            }
            continue;
        }
        if (s == ")") {
            if (!frames.empty() && frames.back().pdepth == pdepth) {
                Frame fr = frames.back();
                frames.pop_back();
                if (!keywordSet().count(fr.name)) {
                    if (fr.name == "reserve" || fr.name == "resize") {
                        if (!fr.recv.empty())
                            f->reserved.insert(fr.recv);
                    } else if (fr.name == "push_back" ||
                               fr.name == "emplace_back") {
                        if (!fr.recv.empty()) {
                            f->growth_recvs.insert(fr.recv);
                            f->allocs.push_back(
                                {"vector-growth", fr.recv, fr.line});
                        }
                    } else if (fr.name == "malloc" ||
                               fr.name == "calloc" ||
                               fr.name == "realloc") {
                        f->allocs.push_back(
                            {fr.name + "()", "", fr.line});
                    } else if (fr.name == "make_unique" ||
                               fr.name == "make_shared") {
                        f->allocs.push_back(
                            {"std::" + fr.name, "", fr.line});
                    } else if (fr.name == "now" &&
                               kClocks.count(fr.qual)) {
                        f->taints.push_back(
                            {"wall-clock",
                             fr.qual + "::now()", fr.line});
                    } else if ((fr.name == "time" ||
                                fr.name == "gettimeofday" ||
                                fr.name == "clock_gettime") &&
                               fr.qual.empty() && fr.recv.empty()) {
                        f->taints.push_back(
                            {"wall-clock", fr.name + "()", fr.line});
                    }
                    f->calls.push_back({fr.recv, fr.qual, fr.name,
                                        fr.argc, fr.line});
                }
            }
            --pdepth;
            continue;
        }
        if (s == ",") {
            if (!frames.empty() &&
                frames.back().pdepth == pdepth &&
                frames.back().cdepth == cdepth)
                ++frames.back().argc;
            continue;
        }
        if (s == "[") {
            if (tx(j + 1) == "[") {  // [[attribute]]
                j = skipBalanced(j, close) - 1;
                continue;
            }
            const std::string &p = j > i ? tx(j - 1) : tx(i);
            const bool subscript =
                isIdentStart(p.empty() ? ' ' : p[0]) || p == ")" ||
                p == "]";
            if (subscript)
                continue;
            // Lambda: [caps] (params)? specifiers? { body }
            std::size_t cap_close = skipBalanced(j, close);
            std::size_t b = cap_close;
            if (tx(b) == "(")
                b = skipBalanced(b, close);
            while (b < close &&
                   (tx(b) == "mutable" || tx(b) == "noexcept" ||
                    tx(b) == "constexpr" || tx(b) == "->" ||
                    (isIdentStart(tx(b)[0]) && tx(b) != "return") ||
                    tx(b) == "::" || tx(b) == "<" || tx(b) == ">" ||
                    tx(b) == "*" || tx(b) == "&"))
                ++b;
            if (b >= close || tx(b) != "{") {
                continue;  // not a lambda after all
            }
            const int lam = newLambda(fn, ln(j));
            f = &m_.fns[fn];  // newLambda may reallocate
            FnInfo *lf = &m_.fns[lam];
            if (!frames.empty()) {
                const Frame &fr = frames.back();
                if (stdSkipSet().count(fr.name) ||
                    keywordSet().count(fr.name)) {
                    // Synchronous use (cv.wait predicate, std::sort
                    // comparator, container emplace): not escaped.
                } else {
                    lf->bind_call_name = fr.name;
                    lf->bind_call_qual = fr.qual;
                    lf->bind_call_recv = fr.recv;
                    lf->bind_arg = fr.argc - 1;
                }
            } else if (j >= i + 2 && tx(j - 1) == "=" &&
                       isIdentStart(tx(j - 2)[0])) {
                const std::string var = tx(j - 2);
                auto it = f->local_types.find(var);
                if (it != f->local_types.end())
                    lf->bind_var_type = it->second;
                else
                    lf->bind_var = var;
            }
            std::size_t after = parseBody(b, close, lam);
            f = &m_.fns[fn];
            j = after - 1;
            continue;
        }
        if (!isIdentStart(s[0]))
            continue;

        // ---- identifier ----
        f->idents.emplace(s, ln(j));
        if (s == "new") {
            f->allocs.push_back({"new", tx(j + 1), ln(j)});
            continue;
        }
        if (s == "random_device") {
            f->taints.push_back(
                {"random-device", "std::random_device", ln(j)});
            continue;
        }
        if (s == "function" && j >= 2 && tx(j - 1) == "::" &&
            tx(j - 2) == "std" && tx(j + 1) == "<") {
            f->allocs.push_back({"std::function", "", ln(j)});
        }
        if (s == "lock_guard" || s == "unique_lock" ||
            s == "scoped_lock") {
            std::size_t k = j + 1;
            if (tx(k) == "<")
                k = skipAngles(k + 1, close);
            if (k < close && isIdentStart(tx(k)[0]) &&
                (tx(k + 1) == "(" || tx(k + 1) == "{")) {
                std::size_t gend = skipBalanced(k + 1, close);
                std::string last;
                for (std::size_t a = k + 2; a + 1 < gend; ++a) {
                    if (isIdentStart(tx(a)[0]))
                        last = tx(a);
                    if (tx(a) == "," && !last.empty()) {
                        f->node.locks_held.push_back(last);
                        last.clear();
                    }
                }
                if (!last.empty())
                    f->node.locks_held.push_back(last);
            }
            continue;
        }
        if (s == "for" && tx(j + 1) == "(") {
            // Range-for: record the range expression's last ident as
            // a taint *candidate*; the model pass checks its declared
            // type for unordered/pointer-keyed containers.
            std::size_t fend = skipBalanced(j + 1, close);
            std::size_t colon = 0;
            int d = 0;
            for (std::size_t a = j + 1; a < fend; ++a) {
                if (tx(a) == "(" || tx(a) == "[" || tx(a) == "{")
                    ++d;
                else if (tx(a) == ")" || tx(a) == "]" ||
                         tx(a) == "}")
                    --d;
                else if (tx(a) == ":" && d == 1) {
                    colon = a;
                    break;
                }
            }
            if (colon) {
                std::string last;
                for (std::size_t a = colon + 1; a + 1 < fend; ++a)
                    if (isIdentStart(tx(a)[0]))
                        last = tx(a);
                if (!last.empty())
                    f->taints.push_back(
                        {"range-for", last, ln(colon)});
            }
            continue;
        }
        if (j > i && tx(j - 1) == "&" && tx(j + 1) != "(" &&
            (j < 2 || !isIdentStart(tx(j - 2)[0])))
            m_.amp_names.insert(s);
        const std::string &nx = tx(j + 1);
        if ((nx == "=" || nx == ";" || nx == "(" || nx == "{") &&
            !keywordSet().count(s))
            recordLocalDecl(*f, j);
    }
    return close;
}

// ---------------------------------------------------------- engine

class Engine
{
public:
    Engine(Model &m, const Options &opt) : m_(m), opt_(opt) {}

    Result run();

private:
    Model &m_;
    const Options &opt_;
    Result res_;
    std::vector<bool> live_;
    std::map<std::string, std::vector<int>> by_name_;
    std::map<std::string, std::map<std::string, std::vector<int>>>
        methods_;
    std::map<std::string, std::string> unq_class_;
    std::map<std::string, std::set<std::string>> class_reserved_;
    struct E
    {
        int a, b, line;
        bool widened;
    };
    std::vector<E> edges_;
    std::vector<std::vector<int>> adj_;       // all edges
    std::vector<std::vector<int>> rev_tight_; // non-widened, reversed

    bool ruleEnabled(const std::string &rule) const
    {
        if (rule == "suppression" || opt_.rules.empty())
            return true;
        return std::find(opt_.rules.begin(), opt_.rules.end(),
                         rule) != opt_.rules.end();
    }

    void report(const std::string &rule, const std::string &file,
                int line, const std::string &msg)
    {
        if (!ruleEnabled(rule))
            return;
        for (FileIR &f : m_.files) {
            if (f.rel != file)
                continue;
            auto lit = f.allows.find(line);
            if (lit == f.allows.end())
                break;
            for (sm::Suppress &s : lit->second) {
                if (s.rule == rule && s.has_reason) {
                    s.used = true;
                    ++res_.suppressions_used;
                    return;
                }
            }
            break;
        }
        res_.violations.push_back({rule, file, line, msg});
    }

    static std::string qualifiedOf(const FnInfo &f)
    {
        if (f.node.name.find("<lambda@") != std::string::npos)
            return f.node.name;
        return f.node.cls.empty() ? f.node.name
                                  : f.node.cls + "::" + f.node.name;
    }
    static std::string idOf(const FnInfo &f)
    {
        return qualifiedOf(f) + "/" +
               std::to_string(f.node.arity_max);
    }
    static bool isLambda(const FnInfo &f) { return f.encloser >= 0; }

    std::string expandType(std::string t) const
    {
        for (int pass = 0; pass < 3; ++pass) {
            std::string extra;
            std::istringstream is(t);
            std::string w;
            while (is >> w) {
                auto it = m_.aliases.find(w);
                if (it != m_.aliases.end() &&
                    t.find(it->second) == std::string::npos)
                    extra += " " + it->second;
            }
            if (extra.empty())
                break;
            t += extra;
        }
        return t;
    }

    int universeOfType(const std::string &t) const
    {
        if (t.empty())
            return kNotEscaped;
        const std::string e = expandType(t);
        if (sm::containsWord(e, "InlineFunction"))
            return kInline;
        if (sm::containsWord(e, "function"))
            return kStdFn;
        return kNotEscaped;
    }

    /** Last word of (expanded) @p t naming a known class. */
    std::string classOfType(const std::string &t) const
    {
        const std::string e = expandType(t);
        std::istringstream is(e);
        std::string w, found;
        while (is >> w) {
            if (m_.classes.count(w))
                found = w;
            else if (unq_class_.count(w))
                found = unq_class_.at(w);
        }
        return found;
    }

    /** Declared type of @p name inside fn @p a: local, param, field
     *  of the owning class (walking outer classes for nesting). */
    std::string varType(int a, const std::string &name) const
    {
        const FnInfo &f = m_.fns[a];
        auto it = f.local_types.find(name);
        if (it != f.local_types.end())
            return it->second;
        for (const Param &p : f.params)
            if (p.name == name)
                return p.type;
        std::string cls = f.node.cls;
        while (!cls.empty()) {
            auto cit = m_.classes.find(cls);
            if (cit != m_.classes.end()) {
                auto fit = cit->second.fields.find(name);
                if (fit != cit->second.fields.end())
                    return fit->second.type;
            }
            std::size_t pos = cls.rfind("::");
            if (pos == std::string::npos)
                break;
            cls = cls.substr(0, pos);
        }
        if (isLambda(f) && f.encloser >= 0)
            return varType(f.encloser, name);
        return "";
    }

    void fixOutOfLine();
    void mergeAndIndex();
    void resolveLambdas();
    void buildEdges();
    void resolveCall(int a, const CallRec &c,
                     std::vector<std::pair<int, bool>> &out);
    void addIndirect(int universe,
                     std::vector<std::pair<int, bool>> &out);
    void checkLockDiscipline();
    void checkHotAlloc();
    void checkTaint();
    void checkSuppressionHygiene();
    void exportIr();
    std::string chainFrom(const std::map<int, int> &parent,
                          int fn) const;
};

void
Engine::fixOutOfLine()
{
    for (const auto &kv : m_.classes) {
        const std::string &q = kv.first;
        std::size_t pos = q.rfind("::");
        unq_class_[pos == std::string::npos ? q
                                            : q.substr(pos + 2)] = q;
    }
    for (FnInfo &f : m_.fns) {
        if (f.out_quals.empty())
            continue;
        std::string best;
        for (std::size_t k = 0; k < f.out_quals.size(); ++k) {
            std::string j;
            for (std::size_t a = k; a < f.out_quals.size(); ++a)
                j += (j.empty() ? "" : "::") + f.out_quals[a];
            if (m_.classes.count(j)) {
                best = j;
                break;
            }
        }
        if (best.empty()) {
            auto it = unq_class_.find(f.out_quals.back());
            best = it != unq_class_.end() ? it->second
                                          : f.out_quals.back();
        }
        f.node.cls = best;
        const std::string own =
            best.substr(best.rfind("::") == std::string::npos
                            ? 0
                            : best.rfind("::") + 2);
        f.is_ctor = !f.is_dtor && f.node.name == own;
        f.is_dtor = f.node.name == "~" + own;
    }
}

void
Engine::mergeAndIndex()
{
    live_.assign(m_.fns.size(), false);
    std::map<std::string, std::vector<int>> groups;
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        const FnInfo &f = m_.fns[i];
        if (isLambda(f)) {
            live_[i] = true;
            continue;
        }
        groups[f.node.cls + "#" + f.node.name + "#" +
               std::to_string(f.node.arity_max)]
            .push_back(int(i));
    }
    for (auto &[key, idxs] : groups) {
        (void)key;
        std::set<std::string> req, exc;
        bool virt = false;
        std::vector<int> defined;
        for (int i : idxs) {
            const FnInfo &f = m_.fns[i];
            req.insert(f.node.requires_locks.begin(),
                       f.node.requires_locks.end());
            exc.insert(f.node.excludes_locks.begin(),
                       f.node.excludes_locks.end());
            virt = virt || f.node.is_virtual;
            if (f.node.is_defined)
                defined.push_back(i);
        }
        const std::vector<int> &lv =
            defined.empty() ? idxs : defined;
        for (std::size_t n = 0; n < lv.size(); ++n) {
            if (defined.empty() && n > 0)
                break;  // one representative for decl-only
            FnInfo &f = m_.fns[lv[n]];
            live_[lv[n]] = true;
            f.node.requires_locks.assign(req.begin(), req.end());
            f.node.excludes_locks.assign(exc.begin(), exc.end());
            f.node.is_virtual = virt;
        }
    }
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        if (!live_[i])
            continue;
        const FnInfo &f = m_.fns[i];
        if (isLambda(f))
            continue;
        by_name_[f.node.name].push_back(int(i));
        if (!f.node.cls.empty())
            methods_[f.node.cls][f.node.name].push_back(int(i));
    }
    // Fields a class reserve()s in any of its methods (typically the
    // constructor) count as pre-sized everywhere in the class.
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        if (!live_[i] || m_.fns[i].node.cls.empty())
            continue;
        const FnInfo &f = m_.fns[i];
        auto cit = m_.classes.find(f.node.cls);
        if (cit == m_.classes.end())
            continue;
        for (const std::string &r : f.reserved)
            if (cit->second.fields.count(r))
                class_reserved_[f.node.cls].insert(r);
    }
}

void
Engine::resolveLambdas()
{
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        FnInfo &f = m_.fns[i];
        if (!isLambda(f))
            continue;
        int u = kNotEscaped;
        if (!f.bind_call_name.empty()) {
            CallRec c{f.bind_call_recv, f.bind_call_qual,
                      f.bind_call_name, f.bind_arg + 1, f.node.line};
            std::vector<std::pair<int, bool>> targets;
            resolveCall(f.encloser, c, targets);
            u = kBoth;  // unresolved target: assume either universe
            for (auto &[t, wid] : targets) {
                (void)wid;
                const FnInfo &g = m_.fns[t];
                if (f.bind_arg >= 0 &&
                    f.bind_arg < int(g.params.size())) {
                    u = universeOfType(g.params[f.bind_arg].type);
                    break;
                }
            }
        } else if (!f.bind_var_type.empty()) {
            u = universeOfType(f.bind_var_type);
        } else if (!f.bind_var.empty()) {
            u = universeOfType(varType(f.encloser, f.bind_var));
        }
        f.universe = u;
        if (u != kNotEscaped) {
            f.node.escaped_callback = true;
            // Runs later, on whatever thread invokes the callback —
            // the encloser's locks are long gone.
            f.node.locks_held.clear();
        }
    }
}

void
Engine::addIndirect(int universe,
                    std::vector<std::pair<int, bool>> &out)
{
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        const FnInfo &f = m_.fns[i];
        if (isLambda(f) && (f.universe & universe))
            out.push_back({int(i), true});
    }
    for (const std::string &nm : m_.amp_names) {
        auto it = by_name_.find(nm);
        if (it == by_name_.end())
            continue;
        for (int i : it->second)
            out.push_back({i, true});
    }
}

void
Engine::resolveCall(int a, const CallRec &c,
                    std::vector<std::pair<int, bool>> &out)
{
    const FnInfo &caller = m_.fns[a];
    auto arityOk = [&](int i) {
        const FnInfo &f = m_.fns[i];
        return c.argc >= f.node.arity_min &&
               c.argc <= f.node.arity_max;
    };
    auto addAll = [&](const std::vector<int> &v, bool widened) {
        std::size_t before = out.size();
        for (int i : v)
            if (arityOk(i))
                out.push_back({i, widened});
        if (out.size() == before)  // arity miscount fallback
            for (int i : v)
                out.push_back({i, widened});
        return out.size() > before;
    };
    auto widenVirtual = [&](std::size_t first_new) {
        bool virt = false;
        for (std::size_t k = first_new; k < out.size(); ++k)
            virt = virt || m_.fns[out[k].first].node.is_virtual;
        if (!virt)
            return;
        auto it = by_name_.find(c.name);
        if (it == by_name_.end())
            return;
        for (int i : it->second) {
            bool dup = false;
            for (auto &p : out)
                dup = dup || p.first == i;
            if (!dup && !m_.fns[i].node.cls.empty() && arityOk(i))
                out.push_back({i, true});
        }
    };
    auto tryClassMethods = [&](const std::string &cls) {
        auto mit = methods_.find(cls);
        if (mit == methods_.end())
            return false;
        auto nit = mit->second.find(c.name);
        if (nit == mit->second.end())
            return false;
        std::size_t first = out.size();
        if (!addAll(nit->second, false))
            return false;
        widenVirtual(first);
        return true;
    };
    auto tryFieldIndirect = [&](const std::string &cls) {
        auto cit = m_.classes.find(cls);
        if (cit == m_.classes.end())
            return false;
        auto fit = cit->second.fields.find(c.name);
        if (fit == cit->second.fields.end())
            return false;
        int u = universeOfType(fit->second.type);
        if (!u)
            return false;
        addIndirect(u, out);
        return true;
    };

    if (!c.qual.empty()) {
        std::string cls = c.qual;
        auto uit = unq_class_.find(c.qual);
        if (uit != unq_class_.end())
            cls = uit->second;
        if (m_.classes.count(cls)) {
            if (tryFieldIndirect(cls) || tryClassMethods(cls))
                return;
            return;  // known class, unknown member: std/base — skip
        }
        // Namespace-qualified free function (fleetio::, detail::).
        auto it = by_name_.find(c.name);
        if (it != by_name_.end()) {
            std::vector<int> frees;
            for (int i : it->second)
                if (m_.fns[i].node.cls.empty())
                    frees.push_back(i);
            addAll(frees, false);
        }
        return;
    }

    if (!c.recv.empty() && c.recv != "this") {
        const std::string t = varType(a, c.recv);
        if (!t.empty()) {
            const std::string cls = classOfType(t);
            if (!cls.empty()) {
                if (tryFieldIndirect(cls) || tryClassMethods(cls))
                    return;
                return;  // known class, unknown member
            }
            // std:: container/smart-ptr receiver: the call either is
            // a known-generic method (skip) or punches through the
            // pointee — conservatively widen on non-generic names.
        }
        if (stdSkipSet().count(c.name))
            return;
        auto it = by_name_.find(c.name);
        if (it != by_name_.end())
            addAll(it->second, true);
        return;
    }

    // Bare call (or this->): own class chain, callback variables,
    // then free functions.
    std::string cls = caller.node.cls;
    while (!cls.empty()) {
        if (tryFieldIndirect(cls) || tryClassMethods(cls))
            return;
        std::size_t pos = cls.rfind("::");
        if (pos == std::string::npos)
            break;
        cls = cls.substr(0, pos);
    }
    {
        int u = universeOfType(varType(a, c.name));
        if (u) {
            addIndirect(u, out);
            return;
        }
    }
    auto it = by_name_.find(c.name);
    if (it != by_name_.end()) {
        std::vector<int> frees;
        for (int i : it->second)
            if (m_.fns[i].node.cls.empty())
                frees.push_back(i);
        if (!frees.empty())
            addAll(frees, false);
    }
}

void
Engine::buildEdges()
{
    std::set<std::tuple<int, int, bool>> seen;
    auto push = [&](int a, int b, int line, bool wid) {
        if (a == b)
            return;
        if (seen.insert({a, b, wid}).second)
            edges_.push_back({a, b, line, wid});
    };
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        if (!live_[i] || !m_.fns[i].node.is_defined)
            continue;
        if (isLambda(m_.fns[i]))
            push(m_.fns[i].encloser, int(i), m_.fns[i].node.line,
                 false);
        // NB: m_.fns[i].calls copied up-front — resolveCall does not
        // mutate fns, but keep iteration index-based regardless.
        const std::vector<CallRec> calls = m_.fns[i].calls;
        for (const CallRec &c : calls) {
            std::vector<std::pair<int, bool>> targets;
            resolveCall(int(i), c, targets);
            for (auto &[t, wid] : targets)
                if (live_[t])
                    push(int(i), t, c.line, wid);
        }
    }
    adj_.assign(m_.fns.size(), {});
    rev_tight_.assign(m_.fns.size(), {});
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        adj_[edges_[e].a].push_back(int(e));
        if (!edges_[e].widened)
            rev_tight_[edges_[e].b].push_back(edges_[e].a);
    }
}

void
Engine::checkLockDiscipline()
{
    // Guarded-field accesses.
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        if (!live_[i] || !m_.fns[i].node.is_defined)
            continue;
        const FnInfo &f = m_.fns[i];
        if (f.is_ctor || f.is_dtor || f.node.cls.empty())
            continue;
        auto cit = m_.classes.find(f.node.cls);
        if (cit == m_.classes.end())
            continue;
        std::set<std::string> held(f.node.locks_held.begin(),
                                   f.node.locks_held.end());
        held.insert(f.node.requires_locks.begin(),
                    f.node.requires_locks.end());
        for (const auto &[fname, fi] : cit->second.fields) {
            if (fi.guarded_by.empty())
                continue;
            auto uit = f.idents.find(fname);
            if (uit == f.idents.end())
                continue;
            if (held.count(fi.guarded_by))
                continue;
            report("lock-discipline", f.node.file, uit->second,
                   "field '" + fname + "' is FLEETIO_GUARDED_BY(" +
                       fi.guarded_by + ") but '" + qualifiedOf(f) +
                       "' accesses it without holding " +
                       fi.guarded_by +
                       " (take a lock_guard or mark the method "
                       "FLEETIO_REQUIRES)");
        }
    }
    // REQUIRES propagation / EXCLUDES re-entrancy over tight edges.
    for (const E &e : edges_) {
        if (e.widened)
            continue;
        const FnInfo &a = m_.fns[e.a];
        const FnInfo &b = m_.fns[e.b];
        if (a.is_ctor || a.is_dtor)
            continue;
        std::set<std::string> held(a.node.locks_held.begin(),
                                   a.node.locks_held.end());
        held.insert(a.node.requires_locks.begin(),
                    a.node.requires_locks.end());
        for (const std::string &mtx : b.node.requires_locks) {
            if (held.count(mtx))
                continue;
            report("lock-discipline", a.node.file, e.line,
                   "'" + qualifiedOf(a) + "' calls '" +
                       qualifiedOf(b) + "' which FLEETIO_REQUIRES(" +
                       mtx + ") without holding " + mtx +
                       "; chain: " + qualifiedOf(a) + " -> " +
                       qualifiedOf(b));
        }
        for (const std::string &mtx : b.node.excludes_locks) {
            if (!held.count(mtx))
                continue;
            report("lock-discipline", a.node.file, e.line,
                   "'" + qualifiedOf(a) + "' holds " + mtx +
                       " while calling '" + qualifiedOf(b) +
                       "' which is FLEETIO_EXCLUDES(" + mtx +
                       ") — re-entrant lock would deadlock");
        }
    }
    // Confined classes must not own synchronization primitives.
    for (const auto &[q, ci] : m_.classes) {
        if (!ci.confined)
            continue;
        for (const auto &[fname, fi] : ci.fields) {
            const std::string e = expandType(fi.type);
            if (sm::containsWord(e, "mutex") ||
                sm::containsWord(e, "shared_mutex") ||
                sm::containsWord(e, "atomic") ||
                sm::containsWord(e, "condition_variable")) {
                report("lock-discipline", ci.file, fi.line,
                       "FLEETIO_THREAD_CONFINED class '" + q +
                           "' declares synchronization member '" +
                           fname + "' (" + fi.type +
                           ") — confinement and internal locking "
                           "are mutually exclusive");
            }
        }
    }
}

std::string
Engine::chainFrom(const std::map<int, int> &parent, int fn) const
{
    std::vector<int> path{fn};
    auto it = parent.find(fn);
    while (it != parent.end() && it->second >= 0 &&
           path.size() < 24) {
        path.push_back(it->second);
        it = parent.find(it->second);
    }
    std::string chain;
    for (auto r = path.rbegin(); r != path.rend(); ++r)
        chain += (chain.empty() ? "" : " -> ") +
                 qualifiedOf(m_.fns[*r]);
    return chain;
}

void
Engine::checkHotAlloc()
{
    std::vector<std::string> roots = opt_.hot_roots;
    if (roots.empty())
        roots = {"EventQueue::step",
                 "EventQueue::runUntil",
                 "EventQueue::runAll",
                 "EventQueue::scheduleAt",
                 "EventQueue::scheduleAfter",
                 "IoScheduler::submit",
                 "Ftl::allocateWrite",
                 "Ftl::lookup",
                 "Ftl::remap",
                 "Ftl::allocateRelocation",
                 "Ftl::trim",
                 "Ftl::trimAll"};
    std::map<int, int> parent;
    std::deque<int> bfs;
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        if (!live_[i])
            continue;
        const std::string q = qualifiedOf(m_.fns[i]);
        for (const std::string &r : roots)
            if (q == r && !parent.count(int(i))) {
                parent[int(i)] = -1;
                bfs.push_back(int(i));
            }
    }
    while (!bfs.empty()) {
        int a = bfs.front();
        bfs.pop_front();
        for (int ei : adj_[a]) {
            int b = edges_[ei].b;
            if (!parent.count(b)) {
                parent[b] = a;
                bfs.push_back(b);
            }
        }
    }
    for (auto &[i, p] : parent) {
        (void)p;
        res_.hot_reachable.insert(idOf(m_.fns[i]));
        const FnInfo &f = m_.fns[i];
        for (const Site &s : f.allocs) {
            if (s.kind == "vector-growth") {
                bool ok = f.reserved.count(s.detail);
                auto cit = class_reserved_.find(f.node.cls);
                ok = ok || (cit != class_reserved_.end() &&
                            cit->second.count(s.detail));
                if (ok)
                    continue;
            }
            std::string what = s.kind;
            if (!s.detail.empty())
                what += " of '" + s.detail + "'";
            report("hot-alloc", f.node.file, s.line,
                   "hot-path " + what + " in '" + qualifiedOf(f) +
                       "'; call chain: " + chainFrom(parent, i));
        }
    }
}

void
Engine::checkTaint()
{
    // Validate range-for candidates against declared container types.
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        if (!live_[i])
            continue;
        FnInfo &f = m_.fns[i];
        std::vector<Site> kept;
        for (Site &s : f.taints) {
            if (s.kind != "range-for") {
                kept.push_back(s);
                continue;
            }
            const std::string t =
                expandType(varType(int(i), s.detail));
            if (t.empty())
                continue;
            if (sm::containsWord(t, "unordered_map") ||
                sm::containsWord(t, "unordered_set")) {
                kept.push_back({"unordered-iteration",
                                s.detail + " (" + t + ")", s.line});
                continue;
            }
            if ((sm::containsWord(t, "map") ||
                 sm::containsWord(t, "set"))) {
                // Pointer-keyed ordered container: '*' before the
                // first top-level comma of the template args.
                std::size_t lt = t.find('<');
                std::size_t comma = t.find(',', lt);
                if (lt != std::string::npos &&
                    t.substr(lt, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - lt)
                            .find('*') != std::string::npos)
                    kept.push_back({"pointer-keyed-iteration",
                                    s.detail + " (" + t + ")",
                                    s.line});
            }
        }
        f.taints = kept;
    }
    // Sink classification.
    static const char *kSinkIdents[] = {
        "ExperimentResult", "FLEETIO_TRACE_EVENT",
        "FLEETIO_ATTR_EVENT", "MetricsRegistry", "TraceRecorder",
        "AttributionHub"};
    static const std::set<std::string> kSinkClasses = {
        "TraceRecorder", "MetricsRegistry", "AttributionHub"};
    auto sinkDesc = [&](int i) -> std::string {
        const FnInfo &f = m_.fns[i];
        if (!live_[i] || !f.node.is_defined)
            return "";
        if (f.node.name.rfind("decide", 0) == 0)
            return "agent decision";
        std::string base = f.node.cls;
        std::size_t pos = base.rfind("::");
        if (pos != std::string::npos)
            base = base.substr(pos + 2);
        if (kSinkClasses.count(base))
            return "trace/metric emission (" + base + ")";
        for (const char *w : kSinkIdents)
            if (f.idents.count(w))
                return std::string(w) == "ExperimentResult"
                           ? "experiment results"
                           : "trace/metric emission (" +
                                 std::string(w) + ")";
        return "";
    };
    std::vector<std::string> sink_of(m_.fns.size());
    for (std::size_t i = 0; i < m_.fns.size(); ++i)
        sink_of[i] = sinkDesc(int(i));
    // Propagate each source fn upward over tight reverse edges until
    // a sink is reached (tainted return values / side effects flow to
    // callers, not callees).
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        if (!live_[i] || m_.fns[i].taints.empty())
            continue;
        std::map<int, int> parent;
        std::deque<int> bfs{int(i)};
        parent[int(i)] = -1;
        int sink = sink_of[i].empty() ? -1 : int(i);
        while (!bfs.empty() && sink < 0) {
            int a = bfs.front();
            bfs.pop_front();
            for (int caller : rev_tight_[a]) {
                if (parent.count(caller))
                    continue;
                parent[caller] = a;
                if (!sink_of[caller].empty()) {
                    sink = caller;
                    break;
                }
                bfs.push_back(caller);
            }
        }
        if (sink < 0)
            continue;
        // Chain source -> ... -> sink (parents point toward source).
        std::vector<int> path;
        for (int at = sink; at != -1; at = parent[at])
            path.push_back(at);
        std::string chain;
        for (auto r = path.rbegin(); r != path.rend(); ++r)
            chain += (chain.empty() ? "" : " -> ") +
                     qualifiedOf(m_.fns[*r]);
        const FnInfo &f = m_.fns[i];
        for (const Site &s : f.taints)
            report("determinism-taint", f.node.file, s.line,
                   s.kind + " (" + s.detail + ") in '" +
                       qualifiedOf(f) + "' flows into " +
                       sink_of[sink] + " via '" +
                       qualifiedOf(m_.fns[sink]) +
                       "'; chain: " + chain);
    }
}

void
Engine::checkSuppressionHygiene()
{
    static const std::set<std::string> kIds = [] {
        std::set<std::string> s;
        for (const RuleInfo &r : rules())
            s.insert(r.id);
        return s;
    }();
    for (const FileIR &f : m_.files) {
        for (const auto &[line, sups] : f.allows) {
            for (const sm::Suppress &s : sups) {
                if (!s.has_reason) {
                    res_.violations.push_back(
                        {"suppression", f.rel, line,
                         "allow(" + s.rule +
                             ") without a reason: write `// "
                             "fleetio-analyze: allow(" +
                             s.rule + "): <why>`"});
                } else if (!kIds.count(s.rule)) {
                    res_.violations.push_back(
                        {"suppression", f.rel, line,
                         "allow(" + s.rule +
                             ") names an unknown rule"});
                }
            }
        }
    }
}

void
Engine::exportIr()
{
    for (std::size_t i = 0; i < m_.fns.size(); ++i) {
        if (!live_[i])
            continue;
        FunctionNode n = m_.fns[i].node;
        n.id = idOf(m_.fns[i]);
        res_.functions.push_back(std::move(n));
    }
    for (const E &e : edges_) {
        if (!live_[e.a] || !live_[e.b])
            continue;
        res_.edges.push_back({idOf(m_.fns[e.a]), idOf(m_.fns[e.b]),
                              e.line, e.widened});
    }
}

Result
Engine::run()
{
    fixOutOfLine();
    mergeAndIndex();
    resolveLambdas();
    buildEdges();
    exportIr();
    checkLockDiscipline();
    checkHotAlloc();
    checkTaint();
    checkSuppressionHygiene();
    res_.files_scanned = m_.files.size();
    std::sort(res_.violations.begin(), res_.violations.end(),
              [](const Violation &a, const Violation &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return std::move(res_);
}

bool
skippedDir(const std::string &name)
{
    return name == ".git" || name == "lint_fixtures" ||
           name == "analyze_fixtures" || name.rfind("build", 0) == 0;
}

}  // namespace

const std::vector<RuleInfo> &
rules()
{
    static const std::vector<RuleInfo> kRules = {
        {"lock-discipline", "R9",
         "FLEETIO_GUARDED_BY/REQUIRES/EXCLUDES lock contracts hold "
         "on every interprocedural path"},
        {"hot-alloc", "R10",
         "no allocation (new/malloc/std::function/make_unique/"
         "unreserved vector growth) reachable from the hot-path "
         "roots"},
        {"determinism-taint", "R11",
         "wall clock / random_device / unordered iteration order "
         "must not flow into results, traces, or agent decisions"},
        {"suppression", "-",
         "fleetio-analyze: allow(<rule>) must carry a reason and "
         "name a real rule"},
    };
    return kRules;
}

const FunctionNode *
Result::lookup(const std::string &qualified) const
{
    for (const FunctionNode &f : functions)
        if (f.id == qualified ||
            f.id.rfind(qualified + "/", 0) == 0)
            return &f;
    return nullptr;
}

bool
Result::hotReachable(const std::string &qualified) const
{
    for (const std::string &id : hot_reachable)
        if (id == qualified || id.rfind(qualified + "/", 0) == 0)
            return true;
    return false;
}

std::vector<std::string>
Result::calleesOf(const std::string &qualified) const
{
    std::vector<std::string> out;
    for (const CallEdge &e : edges)
        if (e.caller == qualified ||
            e.caller.rfind(qualified + "/", 0) == 0)
            out.push_back(e.callee);
    return out;
}

Result
runAnalyze(const std::string &root, const Options &opts)
{
    Model m;
    std::vector<std::string> dirs = opts.scan_dirs;
    if (dirs.empty())
        dirs = {"src"};
    std::vector<fs::path> paths;
    for (const std::string &d : dirs) {
        const fs::path base = fs::path(root) / d;
        if (!fs::is_directory(base))
            continue;
        auto it = fs::recursive_directory_iterator(base);
        for (auto end = fs::end(it); it != end; ++it) {
            if (it->is_directory()) {
                if (skippedDir(it->path().filename().string()))
                    it.disable_recursion_pending();
                continue;
            }
            const std::string ext = it->path().extension().string();
            if (ext == ".h" || ext == ".hpp" || ext == ".cc" ||
                ext == ".cpp")
                paths.push_back(it->path());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path &p : paths) {
        std::string text;
        if (!sm::readFile(p.string(), text))
            continue;
        const std::string stripped = sm::stripCode(text);
        FileIR fir;
        fir.rel = fs::relative(p, root).generic_string();
        fir.allows = sm::parseAllows(sm::splitLines(text),
                                     sm::splitLines(stripped),
                                     "fleetio-analyze:");
        m.files.push_back(std::move(fir));
        Parser(m, m.files.back().rel, tokenize(stripped)).run();
    }
    Engine e(m, opts);
    return e.run();
}

void
writeHuman(std::ostream &os, const Result &r)
{
    for (const Violation &v : r.violations) {
        os << v.file << ":" << v.line << ": [" << v.rule << "] "
           << v.message << "\n";
    }
    os << (r.clean() ? "fleetio-analyze: clean"
                     : "fleetio-analyze: FAILED")
       << " (" << r.files_scanned << " files, "
       << r.functions.size() << " functions, " << r.edges.size()
       << " call edges, " << r.violations.size() << " violation"
       << (r.violations.size() == 1 ? "" : "s") << ", "
       << r.suppressions_used << " suppression"
       << (r.suppressions_used == 1 ? "" : "s") << " used)\n";
}

namespace {

std::string
jsonEscaped(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

void
writeJson(std::ostream &os, const Result &r, const std::string &root)
{
    std::map<std::string, std::size_t> counts;
    for (const RuleInfo &ri : rules())
        counts[ri.id] = 0;
    for (const Violation &v : r.violations)
        ++counts[v.rule];
    os << "{\n  \"schema\": \"fleetio-analyze-v1\",\n  \"root\": \""
       << jsonEscaped(root) << "\",\n  \"files_scanned\": "
       << r.files_scanned << ",\n  \"suppressions_used\": "
       << r.suppressions_used << ",\n  \"ir\": {\"functions\": "
       << r.functions.size() << ", \"call_edges\": "
       << r.edges.size() << ", \"hot_reachable\": "
       << r.hot_reachable.size() << "},\n  \"rule_counts\": {";
    bool first = true;
    for (const auto &[id, n] : counts) {
        os << (first ? "" : ", ") << "\"" << id << "\": " << n;
        first = false;
    }
    os << "},\n  \"violations\": [";
    for (std::size_t i = 0; i < r.violations.size(); ++i) {
        const Violation &v = r.violations[i];
        os << (i ? "," : "") << "\n    {\"rule\": \""
           << jsonEscaped(v.rule) << "\", \"file\": \""
           << jsonEscaped(v.file) << "\", \"line\": " << v.line
           << ", \"message\": \"" << jsonEscaped(v.message)
           << "\"}";
    }
    os << (r.violations.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace fleetio::analyze
