/**
 * @file
 * fleetio-lint: project-specific static analysis enforcing the
 * invariants no compiler checks (DESIGN.md §10). Token/regex scanning
 * plus a lightweight include graph — no LLVM dependency, fast enough
 * to run as a tier-1 ctest over the whole tree.
 *
 * Rules (ids are what `// fleetio-lint: allow(<id>): <reason>` takes):
 *  - nondeterminism      (R1) banned wall-clock / libc RNG under src/
 *  - hotpath             (R2) no std::function / iostream / throwing
 *                             std::stoi-family in src/{sim,ssd,virt}
 *  - trace-macro         (R3) TraceRecorder emits outside src/obs must
 *                             go through FLEETIO_TRACE_EVENT
 *  - layering            (R4) src/{sim,ssd} must not reach
 *                             src/{rl,policies,harness,obs} headers
 *                             (include-graph transitive)
 *  - header-hygiene      (R5) #pragma once, no `using namespace` in
 *                             headers (--fix converts include guards)
 *  - build-registration  (R6) every .cc/.cpp is listed in a
 *                             CMakeLists.txt; every test is in ctest
 *  - journal-api         (R7) block-state mutations in
 *                             src/{ssd,harvest} (erase/retire/release/
 *                             close) go through FlashDevice's durable*
 *                             journal API, never straight at the chip
 *  - attr-macro          (R8) AttributionHub emits in
 *                             src/{sim,ssd,virt,harvest} go through
 *                             FLEETIO_ATTR_EVENT / FLEETIO_ATTR_SCOPE
 *  - suppression              an allow() without a reason is itself a
 *                             violation
 */
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace fleetio::lint {

struct Violation
{
    std::string rule;     ///< rule id ("hotpath", "layering", ...)
    std::string file;     ///< path relative to the scanned root
    int line = 0;         ///< 1-based
    std::string message;
};

struct Options
{
    /** Apply mechanical fixes (header-hygiene guard conversion) and
     *  write the files back instead of reporting them. */
    bool fix = false;

    /** Run only these rule ids (empty = every rule). */
    std::vector<std::string> rules;
};

struct Result
{
    std::vector<Violation> violations;   ///< sorted by (file, line)
    std::size_t files_scanned = 0;
    std::size_t suppressions_used = 0;
    std::vector<std::string> fixed_files;

    bool clean() const { return violations.empty(); }
};

struct RuleInfo
{
    const char *id;
    const char *issue_tag;  ///< "R1".."R8"
    const char *summary;
};

/** The rule registry, in R1..R8 order. */
const std::vector<RuleInfo> &rules();

/** Lint every source file under @p root (src/, tests/, bench/,
 *  examples/, tools/; build trees and tests/lint_fixtures excluded). */
Result runLint(const std::string &root, const Options &opts = {});

/** `file:line: [rule] message` lines plus a summary line. */
void writeHuman(std::ostream &os, const Result &r);

/** SARIF-ish JSON ("fleetio-lint-v1"). */
void writeJson(std::ostream &os, const Result &r, const std::string &root);

/**
 * Pure text transform behind --fix: rewrite a classic
 * `#ifndef/#define ... #endif` include guard as `#pragma once`.
 * Returns true when @p text was changed. Exposed for tests.
 */
bool fixHeaderGuard(std::string &text);

}  // namespace fleetio::lint
