/**
 * @file
 * Figure 15 reproduction: the reward-function ablation — FleetIO vs
 * FleetIO-Unified-Global (one alpha for all agents) vs
 * FleetIO-Customized-Local (custom alpha but beta = 1, no multi-agent
 * blending), bracketed by the two isolation baselines.
 * Paper: Customized-Local behaves like Hardware Isolation (no
 * incentive to donate); Unified-Global is inconsistent; full FleetIO
 * gets both utilization and isolation.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main(int argc, char **argv)
{
    banner("Figure 15: reward-function ablation");
    BenchReport report("fig15_reward_ablation");
    report.setJobs(benchJobs());

    const std::vector<PolicyKind> policies = {
        PolicyKind::kHardwareIsolation,
        PolicyKind::kFleetIoCustomizedLocal,
        PolicyKind::kFleetIoUnifiedGlobal,
        PolicyKind::kFleetIo,
        PolicyKind::kSoftwareIsolation,
    };
    const auto pairs = evaluationPairs();
    std::vector<ExperimentSpec> specs;
    for (const auto &pair : pairs) {
        for (PolicyKind pk : policies)
            specs.push_back(makeSpec(pair, pk));
    }
    const auto results = runExperiments(specs);

    Table a({"pair", "policy", "avg util"});
    Table b({"pair", "policy", "LS P99", "norm. to HW"});
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &pair = pairs[i];
        // policies[] leads with hardware isolation, the P99 baseline.
        const double hw_p99 =
            results[i * policies.size()].meanLatencySensitiveP99();
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto &res = results[i * policies.size() + p];
            report.addCell(pairLabel(pair), res);
            a.addRow({pairLabel(pair), res.policy,
                      fmtPercent(res.avg_util)});
            b.addRow({pairLabel(pair), res.policy,
                      fmtLatencyMs(
                          SimTime(res.meanLatencySensitiveP99())),
                      fmtDouble(normalizeTo(
                          res.meanLatencySensitiveP99(), hw_p99)) +
                          "x"});
        }
    }
    std::cout << "(a) average storage utilization\n";
    a.print(std::cout);
    std::cout << "\n(b) P99 of the latency-sensitive workload\n";
    b.print(std::cout);
    std::cout << "\nExpected shape: Customized-Local's utilization "
                 "tracks Hardware Isolation (beta = 1 gives no "
                 "incentive to donate); full FleetIO lifts "
                 "utilization while holding P99 near HW.\n";
    return report.finish(argc, argv);
}
