/**
 * @file
 * Figure 15 reproduction: the reward-function ablation — FleetIO vs
 * FleetIO-Unified-Global (one alpha for all agents) vs
 * FleetIO-Customized-Local (custom alpha but beta = 1, no multi-agent
 * blending), bracketed by the two isolation baselines.
 * Paper: Customized-Local behaves like Hardware Isolation (no
 * incentive to donate); Unified-Global is inconsistent; full FleetIO
 * gets both utilization and isolation.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main()
{
    banner("Figure 15: reward-function ablation");
    const std::vector<PolicyKind> policies = {
        PolicyKind::kHardwareIsolation,
        PolicyKind::kFleetIoCustomizedLocal,
        PolicyKind::kFleetIoUnifiedGlobal,
        PolicyKind::kFleetIo,
        PolicyKind::kSoftwareIsolation,
    };
    Table a({"pair", "policy", "avg util"});
    Table b({"pair", "policy", "LS P99", "norm. to HW"});
    for (const auto &pair : evaluationPairs()) {
        double hw_p99 = 0;
        for (PolicyKind pk : policies) {
            const auto res = runExperiment(makeSpec(pair, pk));
            if (pk == PolicyKind::kHardwareIsolation)
                hw_p99 = res.meanLatencySensitiveP99();
            a.addRow({pairLabel(pair), res.policy,
                      fmtPercent(res.avg_util)});
            b.addRow({pairLabel(pair), res.policy,
                      fmtLatencyMs(
                          SimTime(res.meanLatencySensitiveP99())),
                      fmtDouble(normalizeTo(
                          res.meanLatencySensitiveP99(), hw_p99)) +
                          "x"});
        }
    }
    std::cout << "(a) average storage utilization\n";
    a.print(std::cout);
    std::cout << "\n(b) P99 of the latency-sensitive workload\n";
    b.print(std::cout);
    std::cout << "\nExpected shape: Customized-Local's utilization "
                 "tracks Hardware Isolation (beta = 1 gives no "
                 "incentive to donate); full FleetIO lifts "
                 "utilization while holding P99 near HW.\n";
    return 0;
}
