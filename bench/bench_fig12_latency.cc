/**
 * @file
 * Figure 12 reproduction: P99 latency of the latency-sensitive
 * workload, normalized to Hardware Isolation, for every policy and
 * pair. Paper: FleetIO is 1.29-1.89x lower than Software Isolation /
 * Adaptive and within ~1.2x of Hardware Isolation.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main(int argc, char **argv)
{
    banner("Figure 12: normalized P99 of the LS workload");
    BenchReport report("fig12_latency");
    report.setJobs(benchJobs());

    const auto pairs = evaluationPairs();
    const auto policies = mainPolicies();
    std::vector<ExperimentSpec> specs;
    for (const auto &pair : pairs) {
        for (PolicyKind pk : policies)
            specs.push_back(makeSpec(pair, pk));
    }
    const auto results = runExperiments(specs);

    Table t({"pair", "HW P99 (abs)", "SSDKeeper", "Adaptive", "SW",
             "FleetIO", "SW/FleetIO"});
    double fleet_sum = 0, reduction_sum = 0;
    int n = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &pair = pairs[i];
        std::vector<double> p99;
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto &res = results[i * policies.size() + p];
            report.addCell(pairLabel(pair), res);
            p99.push_back(res.meanLatencySensitiveP99());
        }
        const double base = p99[0];
        fleet_sum += normalizeTo(p99[4], base);
        reduction_sum += normalizeTo(p99[3], p99[4]);
        ++n;
        t.addRow({pairLabel(pair), fmtLatencyMs(SimTime(base)),
                  fmtDouble(normalizeTo(p99[1], base)) + "x",
                  fmtDouble(normalizeTo(p99[2], base)) + "x",
                  fmtDouble(normalizeTo(p99[3], base)) + "x",
                  fmtDouble(normalizeTo(p99[4], base)) + "x",
                  fmtDouble(normalizeTo(p99[3], p99[4])) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nFleetIO P99 vs Hardware Isolation: "
              << fmtDouble(fleet_sum / n)
              << "x on average (paper: within ~1.2x).\n"
              << "FleetIO reduces P99 vs Software Isolation by "
              << fmtDouble(reduction_sum / n)
              << "x on average (paper headline: 1.5x).\n";
    report.setMetric("fleetio_p99_vs_hw_avg", fleet_sum / n);
    report.setMetric("fleetio_p99_reduction_vs_sw_avg",
                     reduction_sum / n);
    return report.finish(argc, argv);
}
