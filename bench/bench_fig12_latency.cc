/**
 * @file
 * Figure 12 reproduction: P99 latency of the latency-sensitive
 * workload, normalized to Hardware Isolation, for every policy and
 * pair. Paper: FleetIO is 1.29-1.89x lower than Software Isolation /
 * Adaptive and within ~1.2x of Hardware Isolation.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main()
{
    banner("Figure 12: normalized P99 of the LS workload");
    Table t({"pair", "HW P99 (abs)", "SSDKeeper", "Adaptive", "SW",
             "FleetIO", "SW/FleetIO"});
    double fleet_sum = 0, reduction_sum = 0;
    int n = 0;
    for (const auto &pair : evaluationPairs()) {
        std::vector<double> p99;
        for (PolicyKind pk : mainPolicies())
            p99.push_back(runExperiment(makeSpec(pair, pk))
                              .meanLatencySensitiveP99());
        const double base = p99[0];
        fleet_sum += normalizeTo(p99[4], base);
        reduction_sum += normalizeTo(p99[3], p99[4]);
        ++n;
        t.addRow({pairLabel(pair), fmtLatencyMs(SimTime(base)),
                  fmtDouble(normalizeTo(p99[1], base)) + "x",
                  fmtDouble(normalizeTo(p99[2], base)) + "x",
                  fmtDouble(normalizeTo(p99[3], base)) + "x",
                  fmtDouble(normalizeTo(p99[4], base)) + "x",
                  fmtDouble(normalizeTo(p99[3], p99[4])) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nFleetIO P99 vs Hardware Isolation: "
              << fmtDouble(fleet_sum / n)
              << "x on average (paper: within ~1.2x).\n"
              << "FleetIO reduces P99 vs Software Isolation by "
              << fmtDouble(reduction_sum / n)
              << "x on average (paper headline: 1.5x).\n";
    return 0;
}
