/**
 * @file
 * Root-cause observability bench (DESIGN.md §13): proves the latency
 * attribution, SLO verdict, and drift pipelines are exact, correct,
 * and free when disabled.
 *
 * Verdicts:
 *  1. Exactness — every attributed request's stage sum equals its
 *     end-to-end latency exactly (sumMismatches == 0) on a contended,
 *     GC-active cell.
 *  2. Known culprit — a synthetic three-tenant cell where a heavy
 *     writer shares the victim's channels and an innocent tenant runs
 *     elsewhere: the blame matrix charges the victim's wait to the
 *     heavy writer, charges nothing to the innocent bystander, and
 *     the SLO verdict engine names the heavy writer as the culprit.
 *  3. Drift flag — a FleetIO run whose latency-sensitive workload is
 *     swapped mid-measurement (morphTo) must raise at least one agent
 *     drift flag (PSI vs the recorded baseline) after the swap.
 *  4. Parity — the same FleetIO experiment with attribution + drift on
 *     and off produces an identical ExperimentResult (the null-guarded
 *     macros must not perturb the simulation).
 *
 * --smoke shrinks durations for the ctest registration.
 */
#include <cstring>

#include "bench/bench_common.h"
#include "src/harness/testbed.h"
#include "src/obs/attribution.h"
#include "src/obs/drift.h"
#include "src/virt/channel_allocator.h"
#include "src/workloads/generators.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

bool
verdict(bool cond, const std::string &what)
{
    std::cout << (cond ? "PASS: " : "FAIL: ") << what << "\n";
    return cond;
}

bool
sameResult(const ExperimentResult &x, const ExperimentResult &y)
{
    if (x.sim_events != y.sim_events || x.avg_util != y.avg_util ||
        x.p95_util != y.p95_util || x.write_amp != y.write_amp ||
        x.tenants.size() != y.tenants.size()) {
        return false;
    }
    for (std::size_t i = 0; i < x.tenants.size(); ++i) {
        if (x.tenants[i].avg_bw_mbps != y.tenants[i].avg_bw_mbps ||
            x.tenants[i].p50 != y.tenants[i].p50 ||
            x.tenants[i].p99 != y.tenants[i].p99 ||
            x.tenants[i].requests != y.tenants[i].requests ||
            x.tenants[i].slo_violation != y.tenants[i].slo_violation) {
            return false;
        }
    }
    return true;
}

/** Outcome of the synthetic known-culprit cell. */
struct CulpritDrive
{
    std::uint64_t requests = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t blame_heavy = 0;     ///< victim wait blamed on writer
    std::uint64_t blame_innocent = 0;  ///< must stay zero
    std::uint64_t neighbor_verdicts = 0;
    std::uint64_t neighbor_verdicts_right = 0;  ///< culprit == writer
    std::array<std::uint64_t, obs::kNumVerdictCauses> causes{};
    std::uint64_t sim_events = 0;
};

/**
 * Three tenants, driven directly (no policy): a latency-sensitive
 * victim with an intentionally unmeetable SLO, a heavy writer sharing
 * the victim's channels, and an innocent bystander on the other half
 * of the device. Every wait nanosecond the victim suffers is either
 * self-inflicted or the writer's fault; the innocent tenant never
 * touches the victim's channels.
 */
CulpritDrive
driveKnownCulprit(SimTime measure)
{
    TestbedOptions opts;
    opts.seed = 42;
    opts.obs.attribution = true;
    Testbed tb(opts);
    const auto &geo = tb.device().geometry();
    std::vector<ChannelId> shared, other;
    for (ChannelId ch = 0; ch < geo.num_channels; ++ch)
        (ch < geo.num_channels / 2 ? shared : other).push_back(ch);
    const std::uint64_t quota = geo.totalBlocks() / 4;

    // The victim's SLO sits below the device's raw read service time,
    // so every measured window violates and the verdict engine has to
    // explain each one.
    Vssd &victim =
        tb.addTenant(WorkloadKind::kVdiWeb, shared, quota, usec(50));
    Vssd &heavy =
        tb.addTenant(WorkloadKind::kTeraSort, shared, quota, kTimeNever);
    Vssd &innocent =
        tb.addTenant(WorkloadKind::kYcsbB, other, quota, kTimeNever);
    // Amplify only the writer so its programs dominate the shared
    // chips' occupancy ledgers, throttle the victim so its own
    // admission queue stays shallow, and dispatch LS reads with
    // priority (as every real policy does) — the victim's latency is
    // then almost entirely chip-wait inflicted by the writer's
    // in-flight programs, which is what the verdict engine must
    // conclude.
    tb.workload(heavy.id()).morphTo(
        profileFor(WorkloadKind::kTeraSort, 3.0));
    tb.workload(victim.id()).morphTo(
        profileFor(WorkloadKind::kVdiWeb, 0.1));
    tb.scheduler().usePriority(true);
    victim.setPriority(Priority::kHigh);
    heavy.setPriority(Priority::kLow);

    tb.warmupFill();
    tb.startWorkloads();
    tb.run(msec(200));
    tb.beginMeasurement();
    const std::uint64_t events_before = tb.eq().dispatched();
    tb.run(measure);
    tb.endMeasurement();
    tb.stopWorkloads();

    const obs::AttributionHub &hub = *tb.attribution();
    CulpritDrive out;
    out.requests = hub.requests();
    out.mismatches = hub.sumMismatches();
    out.blame_heavy = hub.blame(victim.id(), heavy.id());
    out.blame_innocent = hub.blame(victim.id(), innocent.id());
    for (const obs::SloVerdict &v : hub.verdicts()) {
        if (v.tenant != victim.id())
            continue;
        ++out.causes[std::size_t(v.cause)];
        if (v.cause != obs::VerdictCause::kNeighbor)
            continue;
        ++out.neighbor_verdicts;
        if (v.culprit == heavy.id())
            ++out.neighbor_verdicts_right;
    }
    out.sim_events = tb.eq().dispatched() - events_before;
    return out;
}

/** Outcome of the mid-run workload-swap drift cell. */
struct DriftDrive
{
    std::uint64_t scored = 0;
    std::uint64_t flagged_before = 0;
    std::uint64_t flagged_after = 0;
    double max_psi = 0.0;
    std::uint64_t sim_events = 0;
};

/**
 * Full FleetIO stack (agents, supervisor, GSB) with the drift monitor
 * on. Half-way through the measured region the latency-sensitive
 * tenant's workload is morphed into a high-intensity scan — the agent
 * reacts, its action distribution leaves the recorded baseline, and
 * the monitor must flag it.
 */
DriftDrive
driveDriftSwap(SimTime half_measure)
{
    TestbedOptions opts;
    opts.seed = 42;
    opts.window = msec(100);
    opts.obs.drift = true;
    Testbed tb(opts);
    auto policy = makePolicy(PolicyKind::kFleetIo);
    const std::vector<WorkloadKind> workloads{WorkloadKind::kVdiWeb,
                                              WorkloadKind::kTeraSort};
    const std::vector<SimTime> slos{msec(10), msec(10)};
    policy->setup(tb, workloads, slos);
    tb.warmupFill();
    tb.startWorkloads();
    tb.run(sec(1));
    policy->prepare(tb);
    policy->beforeMeasure(tb);
    tb.beginMeasurement();
    const std::uint64_t events_before = tb.eq().dispatched();

    tb.run(half_measure);
    DriftDrive out;
    out.flagged_before = tb.drift()->flaggedWindows();
    // The swap: the LS tenant turns into a 3x-intensity scan.
    tb.workload(0).morphTo(profileFor(WorkloadKind::kPageRank, 3.0));
    tb.run(half_measure);
    tb.endMeasurement();
    tb.stopWorkloads();

    out.flagged_after = tb.drift()->flaggedWindows();
    out.scored = tb.drift()->windowsScored();
    out.max_psi = tb.drift()->maxPsi();
    out.sim_events = tb.eq().dispatched() - events_before;
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    banner("SLO attribution: exactness, blame, verdicts, drift");
    BenchReport report("slo_attribution");
    report.setJobs(1);

    const SimTime culprit_measure = smoke ? sec(1) : sec(4);
    const SimTime drift_half = smoke ? sec(2) : sec(4);

    // 1/2. Exactness + known culprit on the synthetic contention cell.
    const CulpritDrive cd = driveKnownCulprit(culprit_measure);

    // 3. Drift flags the mid-run workload swap.
    const DriftDrive dd = driveDriftSwap(drift_half);

    // 4. Parity: full FleetIO experiment, attribution + drift on/off.
    ExperimentSpec spec = makeSpec(
        {WorkloadKind::kVdiWeb, WorkloadKind::kTeraSort},
        PolicyKind::kFleetIo);
    if (smoke) {
        spec.warm_run = sec(1);
        spec.measure = sec(2);
    }
    const ExperimentResult res_off = runExperiment(spec);
    ExperimentSpec attributed = spec;
    attributed.opts.obs.attribution = true;
    attributed.opts.obs.drift = true;
    const ExperimentResult res_on = runExperiment(attributed);

    Table t({"quantity", "value"});
    t.addRow({"attributed requests", std::to_string(cd.requests)});
    t.addRow({"stage-sum mismatches", std::to_string(cd.mismatches)});
    t.addRow({"victim wait blamed on writer (ms)",
              fmtDouble(double(cd.blame_heavy) / 1e6, 2)});
    t.addRow({"victim wait blamed on bystander (ms)",
              fmtDouble(double(cd.blame_innocent) / 1e6, 2)});
    t.addRow({"neighbor verdicts (naming writer)",
              std::to_string(cd.neighbor_verdicts) + " (" +
                  std::to_string(cd.neighbor_verdicts_right) + ")"});
    {
        std::string causes;
        for (std::size_t c = 0; c < obs::kNumVerdictCauses; ++c) {
            if (!causes.empty())
                causes += " ";
            causes += std::string(
                          obs::causeName(obs::VerdictCause(c))) +
                      "=" + std::to_string(cd.causes[c]);
        }
        t.addRow({"victim verdicts by cause", causes});
    }
    t.addRow({"drift windows scored", std::to_string(dd.scored)});
    t.addRow({"drift flags before/after swap",
              std::to_string(dd.flagged_before) + "/" +
                  std::to_string(dd.flagged_after)});
    t.addRow({"max PSI", fmtDouble(dd.max_psi, 3)});
    t.print(std::cout);
    std::cout << '\n';

    bool ok = true;
    ok &= verdict(cd.requests > 0 && cd.mismatches == 0,
                  "stage sum == end-to-end latency for every request");
    ok &= verdict(cd.blame_heavy > 0,
                  "victim wait is blamed on the co-located writer");
    ok &= verdict(cd.blame_innocent == 0,
                  "no blame leaks to the channel-isolated bystander");
    ok &= verdict(cd.neighbor_verdicts > 0 &&
                      cd.neighbor_verdicts_right == cd.neighbor_verdicts,
                  "every neighbor-interference verdict names the writer");
    ok &= verdict(dd.scored > 0 && dd.flagged_after > dd.flagged_before,
                  "drift monitor flags the mid-run workload swap");
    ok &= verdict(sameResult(res_off, res_on),
                  "attribution+drift on/off results are identical");
    ok &= verdict(res_on.attr_requests > 0 &&
                      res_on.attr_sum_mismatches == 0,
                  "attributed FleetIO run stays exact end to end");

    report.addCell("culprit",
                   {{"requests", double(cd.requests)},
                    {"mismatches", double(cd.mismatches)},
                    {"blame_heavy_ms", double(cd.blame_heavy) / 1e6},
                    {"neighbor_verdicts", double(cd.neighbor_verdicts)}},
                   cd.sim_events);
    report.addCell("drift",
                   {{"windows_scored", double(dd.scored)},
                    {"flags", double(dd.flagged_after)},
                    {"max_psi", dd.max_psi}},
                   dd.sim_events);
    report.addCell("fleetio/attr-on", res_on);
    report.setMetric("parity", sameResult(res_off, res_on) ? 1 : 0);
    report.setMetric("sum_mismatches", double(cd.mismatches));
    const int regress = report.finish(argc, argv, std::cout);

    return ok ? regress : 1;
}
