/**
 * @file
 * Figure 3 reproduction: per-tenant performance under hardware vs
 * software isolation — (a) bandwidth of the bandwidth-intensive
 * workload (SW up to 1.84x higher) and (b) P99 latency of the
 * latency-sensitive workload (SW up to 2.02x higher).
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main(int argc, char **argv)
{
    banner("Figure 3: collocated performance, HW vs SW isolation");
    BenchReport report("fig03_motivation_perf");
    report.setJobs(benchJobs());

    const auto pairs = evaluationPairs();
    std::vector<ExperimentSpec> specs;
    for (const auto &pair : pairs) {
        specs.push_back(makeSpec(pair, PolicyKind::kHardwareIsolation));
        specs.push_back(makeSpec(pair, PolicyKind::kSoftwareIsolation));
    }
    const auto results = runExperiments(specs);

    Table a({"BI workload (pair)", "HW BW (MB/s)", "SW BW (MB/s)",
             "SW/HW"});
    Table b({"LS workload (pair)", "HW P99", "SW P99", "SW/HW"});
    double bw_gain_sum = 0, lat_ratio_sum = 0;
    int n = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &pair = pairs[i];
        const auto &hw = results[2 * i];
        const auto &sw = results[2 * i + 1];
        report.addCell(pairLabel(pair), hw);
        report.addCell(pairLabel(pair), sw);
        const double bw_hw = hw.meanBandwidthIntensiveBw();
        const double bw_sw = sw.meanBandwidthIntensiveBw();
        const double p99_hw = hw.meanLatencySensitiveP99();
        const double p99_sw = sw.meanLatencySensitiveP99();
        bw_gain_sum += normalizeTo(bw_sw, bw_hw);
        lat_ratio_sum += normalizeTo(p99_sw, p99_hw);
        ++n;
        a.addRow({pairLabel(pair), fmtDouble(bw_hw, 1),
                  fmtDouble(bw_sw, 1),
                  fmtDouble(normalizeTo(bw_sw, bw_hw)) + "x"});
        b.addRow({pairLabel(pair), fmtLatencyMs(SimTime(p99_hw)),
                  fmtLatencyMs(SimTime(p99_sw)),
                  fmtDouble(normalizeTo(p99_sw, p99_hw)) + "x"});
    }
    std::cout << "(a) Bandwidth-intensive workload I/O bandwidth\n";
    a.print(std::cout);
    std::cout << "\n(b) Latency-sensitive workload P99 latency\n";
    b.print(std::cout);
    std::cout << "\nSW-isolation BI bandwidth gain avg "
              << fmtDouble(bw_gain_sum / n)
              << "x (paper: 1.64x avg, up to 1.84x); LS P99 inflation "
                 "avg "
              << fmtDouble(lat_ratio_sum / n)
              << "x (paper: up to 2.02x)\n";
    report.setMetric("sw_bi_bw_gain_avg", bw_gain_sum / n);
    report.setMetric("sw_ls_p99_inflation_avg", lat_ratio_sum / n);
    return report.finish(argc, argv);
}
