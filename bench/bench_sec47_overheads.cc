/**
 * @file
 * §4.7 reproduction (google-benchmark): FleetIO's overhead sources —
 * RL inference per decision window (paper: 1.1 ms), periodic PPO
 * fine-tuning (paper: 51.2 ms per 10 windows), gSB creation (paper:
 * < 1 us of metadata work), and admission-control batch processing
 * (paper: 0.8 ms per 1,000 actions) — plus the model storage cost
 * (paper: 2.2 MB per vSSD).
 */
#include <benchmark/benchmark.h>

#include "src/core/admission_control.h"
#include "src/core/agent.h"
#include "src/harness/testbed.h"
#include "src/virt/channel_allocator.h"

namespace fleetio {
namespace {

FleetIoConfig benchCfg()
{
    FleetIoConfig cfg;
    cfg.decision_window = msec(100);
    return cfg;
}

void
BM_RlInference(benchmark::State &state)
{
    const FleetIoConfig cfg = benchCfg();
    FleetIoAgent agent(0, cfg, 42);
    agent.setTraining(false);
    rl::Vector s(cfg.stateDim(), 0.25);
    for (auto _ : state) {
        auto action = agent.decide(s);
        benchmark::DoNotOptimize(action);
    }
    state.SetLabel("paper: 1.1 ms/window on one CPU core");
}
BENCHMARK(BM_RlInference);

void
BM_PpoFineTune(benchmark::State &state)
{
    const FleetIoConfig cfg = benchCfg();
    for (auto _ : state) {
        state.PauseTiming();
        FleetIoAgent agent(0, cfg, 43);
        Rng rng(7);
        for (int i = 0; i < 64; ++i) {
            rl::Vector s(cfg.stateDim());
            for (auto &x : s)
                x = rng.uniform(-1, 1);
            agent.decide(s);
            agent.completeTransition(rng.uniform());
        }
        rl::Vector boot(cfg.stateDim(), 0.0);
        state.ResumeTiming();
        auto stats = agent.train(boot);
        benchmark::DoNotOptimize(stats);
    }
    state.SetLabel("paper: 51.2 ms per 10 windows");
}
BENCHMARK(BM_PpoFineTune);

void
BM_GsbCreation(benchmark::State &state)
{
    TestbedOptions opts;
    Testbed tb(opts);
    const auto &geo = tb.device().geometry();
    const auto split = ChannelAllocator::equalSplit(geo, 2);
    tb.addTenant(WorkloadKind::kVdiWeb, split[0],
                 geo.totalBlocks() / 2, msec(2));
    tb.addTenant(WorkloadKind::kTeraSort, split[1],
                 geo.totalBlocks() / 2, msec(20));
    const double bw = geo.channelBandwidthMBps() * 2;
    for (auto _ : state) {
        tb.gsb().makeHarvestable(0, bw);   // create a 2-channel gSB
        tb.gsb().makeHarvestable(0, 0.0);  // destroy it (unharvested)
    }
    state.SetLabel("create+destroy pair; paper: < 1 us per creation");
}
BENCHMARK(BM_GsbCreation);

void
BM_AdmissionBatch1000(benchmark::State &state)
{
    TestbedOptions opts;
    Testbed tb(opts);
    const auto &geo = tb.device().geometry();
    const auto split = ChannelAllocator::equalSplit(geo, 2);
    tb.addTenant(WorkloadKind::kVdiWeb, split[0],
                 geo.totalBlocks() / 2, msec(2));
    tb.addTenant(WorkloadKind::kTeraSort, split[1],
                 geo.totalBlocks() / 2, msec(20));
    AdmissionControl adm(tb.gsb(), tb.eq(), msec(50));
    for (auto _ : state) {
        state.PauseTiming();
        for (int i = 0; i < 1000; ++i) {
            const bool mh = i % 2 == 0;
            adm.submit(PendingAction{
                VssdId(i % 2),
                mh ? PendingAction::Type::kMakeHarvestable
                   : PendingAction::Type::kHarvest,
                geo.channelBandwidthMBps(), 0});
        }
        state.ResumeTiming();
        adm.flush();
    }
    state.SetLabel("1000 actions/batch; paper: 0.8 ms");
}
BENCHMARK(BM_AdmissionBatch1000);

void
BM_ModelStorageCost(benchmark::State &state)
{
    const FleetIoConfig cfg = benchCfg();
    for (auto _ : state) {
        FleetIoAgent agent(0, cfg, 44);
        benchmark::DoNotOptimize(agent);
        state.counters["params"] =
            double(agent.policy().numParams());
        state.counters["bytes_fp64"] =
            double(agent.policy().numParams() * sizeof(double));
    }
    state.SetLabel("paper: 2.2 MB / 9K params per vSSD");
}
BENCHMARK(BM_ModelStorageCost);

}  // namespace
}  // namespace fleetio

BENCHMARK_MAIN();
