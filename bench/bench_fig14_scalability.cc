/**
 * @file
 * Figure 14 reproduction: scalability over the Table-5 mixes (2/4/8
 * vSSDs) — (a) average utilization, (b) LS P99 normalized to HW
 * isolation, (c) BI bandwidth normalized to HW isolation.
 * Paper: FleetIO keeps the P99 increase under ~10 % while improving
 * utilization 1.18-1.33x and BI bandwidth ~1.45x on average.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main(int argc, char **argv)
{
    banner("Figure 14: scalability over Table-5 mixes");
    BenchReport report("fig14_scalability");
    report.setJobs(benchJobs());

    const auto mixes = scalabilityMixes();
    const auto policies = mainPolicies();
    std::vector<ExperimentSpec> specs;
    for (const auto &mix : mixes) {
        for (PolicyKind pk : policies)
            specs.push_back(makeSpec(mix.workloads, pk));
    }
    const auto results = runExperiments(specs);

    Table a({"mix", "policy", "avg util", "util vs HW"});
    Table b({"mix", "policy", "mean LS P99", "vs HW"});
    Table c({"mix", "policy", "mean BI BW", "vs HW"});

    for (std::size_t i = 0; i < mixes.size(); ++i) {
        const auto &mix = mixes[i];
        // mainPolicies() leads with hardware isolation, the baseline.
        const auto &hw = results[i * policies.size()];
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto &res = results[i * policies.size() + p];
            report.addCell(mix.label, res);
            a.addRow({mix.label, res.policy,
                      fmtPercent(res.avg_util),
                      fmtDouble(normalizeTo(res.avg_util,
                                            hw.avg_util)) + "x"});
            b.addRow({mix.label, res.policy,
                      fmtLatencyMs(
                          SimTime(res.meanLatencySensitiveP99())),
                      fmtDouble(normalizeTo(
                          res.meanLatencySensitiveP99(),
                          hw.meanLatencySensitiveP99())) + "x"});
            c.addRow({mix.label, res.policy,
                      fmtDouble(res.meanBandwidthIntensiveBw(), 1) +
                          " MB/s",
                      fmtDouble(normalizeTo(
                          res.meanBandwidthIntensiveBw(),
                          hw.meanBandwidthIntensiveBw())) + "x"});
        }
    }
    std::cout << "(a) average storage utilization\n";
    a.print(std::cout);
    std::cout << "\n(b) P99 of latency-sensitive workloads\n";
    b.print(std::cout);
    std::cout << "\n(c) bandwidth of bandwidth-intensive workloads\n";
    c.print(std::cout);
    return report.finish(argc, argv);
}
