/**
 * @file
 * Figure 13 reproduction: I/O bandwidth of the bandwidth-intensive
 * workload, normalized to Hardware Isolation, for every policy and
 * pair. Paper: FleetIO improves BI bandwidth 1.27-1.61x over Hardware
 * Isolation (1.46x avg), reaching ~89 % of Software Isolation's.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main(int argc, char **argv)
{
    banner("Figure 13: normalized bandwidth of the BI workload");
    BenchReport report("fig13_bandwidth");
    report.setJobs(benchJobs());

    const auto pairs = evaluationPairs();
    const auto policies = mainPolicies();
    std::vector<ExperimentSpec> specs;
    for (const auto &pair : pairs) {
        for (PolicyKind pk : policies)
            specs.push_back(makeSpec(pair, pk));
    }
    const auto results = runExperiments(specs);

    Table t({"pair", "HW BW (abs)", "SSDKeeper", "Adaptive", "SW",
             "FleetIO", "FleetIO/SW"});
    double gain_sum = 0, frac_sum = 0;
    int n = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &pair = pairs[i];
        std::vector<double> bw;
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto &res = results[i * policies.size() + p];
            report.addCell(pairLabel(pair), res);
            bw.push_back(res.meanBandwidthIntensiveBw());
        }
        const double base = bw[0];
        gain_sum += normalizeTo(bw[4], base);
        frac_sum += normalizeTo(bw[4], bw[3]);
        ++n;
        t.addRow({pairLabel(pair), fmtDouble(base, 1) + " MB/s",
                  fmtDouble(normalizeTo(bw[1], base)) + "x",
                  fmtDouble(normalizeTo(bw[2], base)) + "x",
                  fmtDouble(normalizeTo(bw[3], base)) + "x",
                  fmtDouble(normalizeTo(bw[4], base)) + "x",
                  fmtPercent(normalizeTo(bw[4], bw[3]))});
    }
    t.print(std::cout);
    std::cout << "\nFleetIO BI bandwidth vs Hardware Isolation: "
              << fmtDouble(gain_sum / n)
              << "x avg (paper: 1.46x avg); fraction of Software "
                 "Isolation: "
              << fmtPercent(frac_sum / n) << " (paper: ~89%).\n";
    report.setMetric("fleetio_bi_bw_gain_avg", gain_sum / n);
    report.setMetric("fleetio_vs_sw_bw_avg", frac_sum / n);
    return report.finish(argc, argv);
}
