/**
 * @file
 * Figure 13 reproduction: I/O bandwidth of the bandwidth-intensive
 * workload, normalized to Hardware Isolation, for every policy and
 * pair. Paper: FleetIO improves BI bandwidth 1.27-1.61x over Hardware
 * Isolation (1.46x avg), reaching ~89 % of Software Isolation's.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main()
{
    banner("Figure 13: normalized bandwidth of the BI workload");
    Table t({"pair", "HW BW (abs)", "SSDKeeper", "Adaptive", "SW",
             "FleetIO", "FleetIO/SW"});
    double gain_sum = 0, frac_sum = 0;
    int n = 0;
    for (const auto &pair : evaluationPairs()) {
        std::vector<double> bw;
        for (PolicyKind pk : mainPolicies())
            bw.push_back(runExperiment(makeSpec(pair, pk))
                             .meanBandwidthIntensiveBw());
        const double base = bw[0];
        gain_sum += normalizeTo(bw[4], base);
        frac_sum += normalizeTo(bw[4], bw[3]);
        ++n;
        t.addRow({pairLabel(pair), fmtDouble(base, 1) + " MB/s",
                  fmtDouble(normalizeTo(bw[1], base)) + "x",
                  fmtDouble(normalizeTo(bw[2], base)) + "x",
                  fmtDouble(normalizeTo(bw[3], base)) + "x",
                  fmtDouble(normalizeTo(bw[4], base)) + "x",
                  fmtPercent(normalizeTo(bw[4], bw[3]))});
    }
    t.print(std::cout);
    std::cout << "\nFleetIO BI bandwidth vs Hardware Isolation: "
              << fmtDouble(gain_sum / n)
              << "x avg (paper: 1.46x avg); fraction of Software "
                 "Isolation: "
              << fmtPercent(frac_sum / n) << " (paper: ~89%).\n";
    return 0;
}
