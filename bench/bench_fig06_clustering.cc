/**
 * @file
 * Figure 6 reproduction: k-means clustering of cloud workloads from
 * block-trace features (read BW, write BW, LPA entropy, avg I/O size),
 * PCA-projected to two factors. Paper result: bandwidth-intensive
 * workloads separate from latency-sensitive ones, YCSB forms its own
 * low-entropy cluster, and 98.4 % of held-out windows land in their
 * workload's ground-truth cluster.
 */
#include <numeric>

#include "bench/bench_common.h"
#include "src/cluster/features.h"
#include "src/cluster/pca.h"
#include "src/cluster/workload_classifier.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

struct TracedWindows
{
    std::vector<rl::Vector> features;
    std::vector<int> ids;
};

/** Run one workload solo and extract feature windows from its trace. */
std::vector<rl::Vector>
collectWindowsFor(WorkloadKind kind)
{
    TestbedOptions opts;
    Testbed tb(opts);
    std::vector<ChannelId> all(opts.geo.num_channels);
    std::iota(all.begin(), all.end(), 0);
    Vssd &v =
        tb.addTenant(kind, all, opts.geo.totalBlocks(), msec(50));
    auto &wl = tb.workload(v.id());
    wl.enableTrace(60000);
    tb.warmupFill();
    tb.startWorkloads();
    tb.run(sec(20));
    // Scaled trace volume: 1K-request windows stand in for the
    // paper's 10K windows (same features, shorter traces).
    const auto windows = extractWindows(wl.trace(), opts.geo.page_size,
                                        v.ftl().logicalPages(), 1000);
    std::vector<rl::Vector> out;
    out.reserve(windows.size());
    for (const auto &f : windows)
        out.push_back(f.toVector());
    return out;
}

/** Trace every workload (one solo run each, in parallel). */
TracedWindows
collectWindows(const std::vector<WorkloadKind> &kinds)
{
    const auto per_kind = parallelMap(
        kinds, [](const WorkloadKind &k) { return collectWindowsFor(k); });
    TracedWindows out;
    for (std::size_t w = 0; w < per_kind.size(); ++w) {
        for (auto &f : per_kind[w]) {
            out.features.push_back(f);
            out.ids.push_back(int(w));
        }
    }
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    banner("Figure 6: workload clustering (k-means + PCA)");
    BenchReport report("fig06_clustering");
    report.setJobs(benchJobs());
    // 8 evaluated workloads, as plotted in Fig. 6.
    const std::vector<WorkloadKind> kinds = {
        WorkloadKind::kMlPrep,       WorkloadKind::kPageRank,
        WorkloadKind::kTeraSort,     WorkloadKind::kYcsbB,
        WorkloadKind::kLiveMaps,     WorkloadKind::kSearchEngine,
        WorkloadKind::kTpce,         WorkloadKind::kVdiWeb};

    const auto all = collectWindows(kinds);
    std::cout << "collected " << all.features.size()
              << " feature windows\n\n";

    // 70/30 train/test split, deterministic interleave.
    TracedWindows train, test;
    for (std::size_t i = 0; i < all.features.size(); ++i) {
        auto &dst = (i % 10 < 7) ? train : test;
        dst.features.push_back(all.features[i]);
        dst.ids.push_back(all.ids[i]);
    }

    WorkloadClassifier wc;
    wc.fit(train.features, train.ids);

    // Cluster composition table.
    Table comp({"workload", "type", "cluster", "windows"});
    for (std::size_t w = 0; w < kinds.size(); ++w) {
        int count = 0;
        for (std::size_t i = 0; i < train.ids.size(); ++i)
            count += train.ids[i] == int(w);
        comp.addRow({workloadName(kinds[w]),
                     isBandwidthIntensive(kinds[w]) ? "BI" : "LS",
                     std::to_string(wc.groundTruthCluster(int(w))),
                     std::to_string(count)});
    }
    comp.print(std::cout);

    // Invariants the paper's figure shows.
    const int c_bi = wc.groundTruthCluster(0);       // ML Prep
    const int c_ycsb = wc.groundTruthCluster(3);     // YCSB
    const int c_vdi = wc.groundTruthCluster(7);      // VDI-Web
    std::cout << "\nBI cluster=" << c_bi << "  YCSB cluster=" << c_ycsb
              << "  LS cluster=" << c_vdi << "\n";
    std::cout << "BI separated from LS: "
              << (c_bi != c_vdi ? "yes" : "NO") << "\n";
    std::cout << "YCSB has its own cluster (lower LPA entropy): "
              << (c_ycsb != c_vdi && c_ycsb != c_bi ? "yes" : "NO")
              << "\n";

    const double acc = wc.testAccuracy(test.features, test.ids);
    std::cout << "held-out window accuracy: " << fmtPercent(acc)
              << "  (paper: 98.4%)\n\n";
    report.setMetric("held_out_accuracy", acc);
    report.setMetric("feature_windows", double(all.features.size()));
    for (std::size_t w = 0; w < kinds.size(); ++w) {
        int count = 0;
        for (std::size_t i = 0; i < all.ids.size(); ++i)
            count += all.ids[i] == int(w);
        report.addCell(workloadName(kinds[w]),
                       {{"windows", double(count)},
                        {"cluster",
                         double(wc.groundTruthCluster(int(w)))}});
    }

    // PCA scatter (factor 1 / factor 2 centroids per workload).
    Rng rng(99);
    std::vector<rl::Vector> normed;
    for (const auto &f : train.features)
        normed.push_back(wc.normalize(f));
    Pca pca;
    pca.fit(normed, rng);
    Table scat({"workload", "factor 1 (mean)", "factor 2 (mean)"});
    for (std::size_t w = 0; w < kinds.size(); ++w) {
        double x = 0, y = 0;
        int cnt = 0;
        for (std::size_t i = 0; i < normed.size(); ++i) {
            if (train.ids[i] != int(w))
                continue;
            const auto [px, py] = pca.project(normed[i]);
            x += px;
            y += py;
            ++cnt;
        }
        scat.addRow({workloadName(kinds[w]),
                     fmtDouble(cnt ? x / cnt : 0),
                     fmtDouble(cnt ? y / cnt : 0)});
    }
    std::cout << "PCA projection (cluster centroids, cf. Fig. 6):\n";
    scat.print(std::cout);
    return report.finish(argc, argv);
}
