/**
 * @file
 * Figure 17 reproduction: robustness to a collocated-workload switch.
 * FleetIO-Transfer trains with one collocated workload and is then
 * measured after that workload morphs into a different one;
 * FleetIO-Pretrained trains directly on the final combination.
 * Paper: Transfer performs within 5 % of Pretrained — the agents do
 * not overfit to the specific collocated tenant.
 */
#include "bench/bench_common.h"
#include "src/policies/fleetio_policy.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

struct Outcome
{
    double util = 0;
    double focus_bw = 0;   ///< bandwidth of the kept (focus) tenant
    double focus_p99 = 0;  ///< P99 of the kept (focus) tenant
};

/**
 * Run FleetIO with tenants {focus, trained_with}; after training,
 * morph the collocated tenant into @p evaluated_with and measure.
 * Pass trained_with == evaluated_with for the Pretrained arm.
 */
Outcome
run(WorkloadKind focus, WorkloadKind trained_with,
    WorkloadKind evaluated_with)
{
    ExperimentSpec spec =
        makeSpec({focus, trained_with}, PolicyKind::kFleetIo);
    // Calibrate the SLOs against the *evaluated* combination.
    std::vector<SimTime> slos{
        calibratedSlo(focus, 2, spec.opts),
        calibratedSlo(evaluated_with, 2, spec.opts)};

    Testbed tb(spec.opts);
    FleetIoPolicy policy;
    policy.setup(tb, spec.workloads, slos);
    tb.warmupFill();
    tb.startWorkloads();
    tb.run(spec.warm_run);
    policy.prepare(tb);  // pre-training with the original neighbour

    if (trained_with != evaluated_with)
        tb.workload(1).morphTo(profileFor(evaluated_with));

    policy.beforeMeasure(tb);
    tb.beginMeasurement();
    tb.run(spec.measure);
    tb.endMeasurement();

    Vssd *f = tb.vssds().get(0);
    Outcome out;
    out.util = tb.avgUtilization();
    out.focus_bw = f->bandwidth().totalMBps(spec.measure);
    out.focus_p99 = double(f->latency().quantile(0.99));
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    banner("Figure 17: robustness to collocated-workload changes");
    BenchReport report("fig17_robustness");
    report.setJobs(benchJobs());

    using K = WorkloadKind;
    struct Case
    {
        K focus, trained, evaluated;
        bool focus_is_bi;
    };
    // T + (V -> Y) etc., as labelled in Fig. 17.
    const std::vector<Case> cases = {
        {K::kTeraSort, K::kVdiWeb, K::kYcsbB, true},
        {K::kMlPrep, K::kVdiWeb, K::kYcsbB, true},
        {K::kPageRank, K::kVdiWeb, K::kYcsbB, true},
        {K::kVdiWeb, K::kTeraSort, K::kMlPrep, false},
        {K::kVdiWeb, K::kMlPrep, K::kPageRank, false},
        {K::kYcsbB, K::kPageRank, K::kTeraSort, false},
    };

    // Both arms of every case are independent simulations: fan all 12
    // out through the pool, pretrained at 2i, transfer at 2i+1.
    struct Task
    {
        K focus, trained, evaluated;
    };
    std::vector<Task> tasks;
    for (const auto &c : cases) {
        tasks.push_back({c.focus, c.evaluated, c.evaluated});
        tasks.push_back({c.focus, c.trained, c.evaluated});
    }
    const auto outcomes = parallelMap(tasks, [](const Task &t) {
        return run(t.focus, t.trained, t.evaluated);
    });

    Table t({"case", "metric", "Pretrained", "Transfer",
             "Transfer/Pretrained"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &c = cases[i];
        const Outcome &pre = outcomes[2 * i];
        const Outcome &xfer = outcomes[2 * i + 1];
        const std::string label =
            workloadName(c.focus) + " + (" + workloadName(c.trained) +
            " -> " + workloadName(c.evaluated) + ")";
        t.addRow({label, "util", fmtPercent(pre.util),
                  fmtPercent(xfer.util),
                  fmtDouble(normalizeTo(xfer.util, pre.util))});
        if (c.focus_is_bi) {
            t.addRow({label, "BW (MB/s)", fmtDouble(pre.focus_bw, 1),
                      fmtDouble(xfer.focus_bw, 1),
                      fmtDouble(normalizeTo(xfer.focus_bw,
                                            pre.focus_bw))});
        } else {
            t.addRow({label, "P99",
                      fmtLatencyMs(SimTime(pre.focus_p99)),
                      fmtLatencyMs(SimTime(xfer.focus_p99)),
                      fmtDouble(normalizeTo(xfer.focus_p99,
                                            pre.focus_p99))});
        }
        report.addCell(label + " [pretrained]",
                       {{"util", pre.util},
                        {"focus_bw_mbps", pre.focus_bw},
                        {"focus_p99_ns", pre.focus_p99}});
        report.addCell(label + " [transfer]",
                       {{"util", xfer.util},
                        {"focus_bw_mbps", xfer.focus_bw},
                        {"focus_p99_ns", xfer.focus_p99}});
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: Transfer within a few percent of "
                 "Pretrained (paper: within 5%).\n";
    return report.finish(argc, argv);
}
