/**
 * @file
 * Fault-tolerance sweep: the FleetIO stack on an aging/faulty device.
 * Injected read retries, program/erase failures, and chip slow-down
 * windows degrade the device while GC retirement, FTL program-repair,
 * and donor-pressure gSB revokes absorb the damage. Each fault level is
 * reported normalized to the fault-free baseline, followed by two
 * integrity verdicts: no LPA mapping may be lost, and no vSSD may wedge
 * at zero free quota.
 */
#include "bench/bench_common.h"
#include "src/policies/fleetio_policy.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

struct Level
{
    std::string label;
    FaultConfig cfg;
};

std::vector<Level>
faultLevels()
{
    std::vector<Level> levels(4);
    levels[0].label = "none";

    levels[1].label = "low";
    levels[1].cfg.read_retry_prob = 1e-3;
    levels[1].cfg.program_fail_prob = 1e-4;
    levels[1].cfg.erase_fail_prob = 1e-3;
    levels[1].cfg.chip_slowdown_prob = 1e-4;
    levels[1].cfg.wear_error_growth = 1e-6;

    levels[2].label = "medium";
    levels[2].cfg.read_retry_prob = 1e-2;
    levels[2].cfg.program_fail_prob = 1e-3;
    levels[2].cfg.erase_fail_prob = 1e-2;
    levels[2].cfg.chip_slowdown_prob = 1e-3;
    levels[2].cfg.wear_error_growth = 1e-5;

    levels[3].label = "high";
    levels[3].cfg.read_retry_prob = 5e-2;
    levels[3].cfg.program_fail_prob = 5e-3;
    levels[3].cfg.erase_fail_prob = 5e-2;
    levels[3].cfg.chip_slowdown_prob = 5e-3;
    levels[3].cfg.wear_error_growth = 1e-4;
    return levels;
}

struct Outcome
{
    double util = 0;
    double agg_bw = 0;
    double ls_p99 = 0;
    double slo_vio = 0;
    double write_amp = 1.0;
    FaultCounters faults{};
    std::uint64_t retired = 0;
    std::uint64_t repairs = 0;
    std::uint64_t revokes = 0;
    bool mappings_intact = true;
    bool no_wedged_vssd = true;
};

/** Walk every tenant's map: each mapped LPA must resolve to a valid,
 *  non-retired page whose reverse map points straight back. */
bool
verifyMappings(Testbed &tb)
{
    const auto &geo = tb.device().geometry();
    for (auto *v : tb.vssds().active()) {
        Ftl &ftl = v->ftl();
        for (Lpa lpa = 0; lpa < ftl.logicalPages(); ++lpa) {
            const Ppa ppa = ftl.lookup(lpa);
            if (ppa == kNoPpa)
                continue;
            const FlashBlock &blk = tb.device().blockOf(ppa);
            if (blk.state == BlockState::kRetired)
                return false;
            if (!blk.valid[geo.pageOf(ppa)])
                return false;
            const RmapEntry &r = tb.device().rmap(ppa);
            if (r.data_vssd != v->id() || r.lpa != lpa)
                return false;
        }
    }
    return true;
}

Outcome
run(const FaultConfig &faults)
{
    ExperimentSpec spec = makeSpec(
        {WorkloadKind::kVdiWeb, WorkloadKind::kTeraSort},
        PolicyKind::kFleetIo);
    spec.opts.faults = faults;
    std::vector<SimTime> slos;
    for (WorkloadKind k : spec.workloads)
        slos.push_back(calibratedSlo(k, spec.workloads.size(),
                                     spec.opts));

    Testbed tb(spec.opts);
    FleetIoPolicy policy;
    policy.setup(tb, spec.workloads, slos);
    tb.warmupFill();
    tb.startWorkloads();
    tb.run(spec.warm_run);
    policy.prepare(tb);
    policy.beforeMeasure(tb);
    tb.beginMeasurement();
    tb.run(spec.measure);
    tb.endMeasurement();

    Outcome out;
    out.util = tb.avgUtilization();
    out.write_amp = tb.device().writeAmplification();
    out.faults = tb.faultCounters();
    out.retired = tb.device().totalRetiredBlocks();
    out.revokes = tb.gsb().revokedCount();
    int ls = 0;
    for (auto *v : tb.vssds().active()) {
        out.agg_bw += v->bandwidth().totalMBps(spec.measure);
        out.repairs += v->ftl().programFailRepairs();
        out.slo_vio += v->latency().sloViolation();
        if (!isBandwidthIntensive(tb.tenantKind(v->id()))) {
            out.ls_p99 += double(v->latency().quantile(0.99));
            ++ls;
        }
    }
    out.slo_vio /= double(tb.vssds().active().size());
    if (ls > 0)
        out.ls_p99 /= ls;

    out.mappings_intact = verifyMappings(tb);
    for (auto *v : tb.vssds().active()) {
        // A wedged vSSD: zero free quota with GC unable to help. The
        // degradation machinery (retire + re-trigger + revoke) must
        // keep every tenant above the floor.
        if (v->ftl().freeQuotaRatio() <= 0.0 && v->ftl().needsGc() &&
            !v->gc().active()) {
            out.no_wedged_vssd = false;
        }
    }
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    banner("Fault tolerance: FleetIO under injected NAND faults");
    BenchReport report("fault_tolerance");
    report.setJobs(benchJobs());

    const auto levels = faultLevels();
    const auto outs = parallelMap(
        levels, [](const Level &lvl) { return run(lvl.cfg); });

    const Outcome &base = outs[0];
    Table t({"faults", "util", "util/base", "BW (MB/s)", "BW/base",
             "LS P99", "P99/base", "SLO vio", "WA"});
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const Outcome &o = outs[i];
        t.addRow({levels[i].label, fmtPercent(o.util),
                  fmtDouble(normalizeTo(o.util, base.util)),
                  fmtDouble(o.agg_bw, 1),
                  fmtDouble(normalizeTo(o.agg_bw, base.agg_bw)),
                  fmtLatencyMs(SimTime(o.ls_p99)),
                  fmtDouble(normalizeTo(o.ls_p99, base.ls_p99)),
                  fmtPercent(o.slo_vio), fmtDouble(o.write_amp)});
    }
    t.print(std::cout);

    std::cout << '\n';
    Table f({"faults", "rd-retries", "pgm-fail", "repaired",
             "erase-fail", "retired", "slowdowns", "revokes"});
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const Outcome &o = outs[i];
        f.addRow({levels[i].label,
                  std::to_string(o.faults.read_retries),
                  std::to_string(o.faults.program_failures),
                  std::to_string(o.repairs),
                  std::to_string(o.faults.erase_failures),
                  std::to_string(o.retired),
                  std::to_string(o.faults.slowdown_windows),
                  std::to_string(o.revokes)});
    }
    f.print(std::cout);

    bool ok = true;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (!outs[i].mappings_intact) {
            std::cout << "\nFAIL: lost LPA mappings at level '"
                      << levels[i].label << "'\n";
            ok = false;
        }
        if (!outs[i].no_wedged_vssd) {
            std::cout << "\nFAIL: vSSD wedged at zero free quota at "
                         "level '"
                      << levels[i].label << "'\n";
            ok = false;
        }
    }
    if (ok) {
        std::cout << "\nPASS: no lost mappings, no wedged vSSD at any "
                     "fault level.\n";
    }
    std::cout << "Expected shape: graceful degradation — util/BW dip "
                 "and P99 grows with the fault rate, while every run "
                 "completes with intact metadata.\n";
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const Outcome &o = outs[i];
        report.addCell(levels[i].label,
                       {{"avg_util", o.util},
                        {"agg_bw_mbps", o.agg_bw},
                        {"ls_p99_ns", o.ls_p99},
                        {"slo_violation", o.slo_vio},
                        {"write_amp", o.write_amp},
                        {"blocks_retired", double(o.retired)},
                        {"mappings_intact",
                         o.mappings_intact ? 1.0 : 0.0}});
    }
    report.setMetric("integrity_ok", ok ? 1.0 : 0.0);
    const int regress = report.finish(argc, argv);
    return ok ? regress : 1;
}
