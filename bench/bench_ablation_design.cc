/**
 * @file
 * Design-choice ablations called out in DESIGN.md §5 (beyond the
 * paper's own Fig. 15 reward ablation):
 *   - beta sweep for the multi-agent reward blend (paper default 0.6),
 *   - RL state stacking depth (1 vs the paper's 3 windows),
 *   - admission-control batching interval (paper default 50 ms).
 */
#include <memory>

#include "bench/bench_common.h"
#include "src/core/fleetio_controller.h"
#include "src/virt/channel_allocator.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

struct Row
{
    double util = 0;
    double ls_p99 = 0;
    double bi_bw = 0;
};

/** FleetIO run with a fully custom FleetIoConfig. */
Row
runCustom(const std::vector<WorkloadKind> &workloads,
          FleetIoConfig cfg)
{
    ExperimentSpec spec = makeSpec(workloads, PolicyKind::kFleetIo);
    std::vector<SimTime> slos;
    for (WorkloadKind k : workloads)
        slos.push_back(calibratedSlo(k, workloads.size(), spec.opts));

    Testbed tb(spec.opts);
    const auto &geo = tb.device().geometry();
    const auto split =
        ChannelAllocator::equalSplit(geo, workloads.size());
    const auto quota = geo.totalBlocks() / workloads.size();
    for (std::size_t i = 0; i < workloads.size(); ++i)
        tb.addTenant(workloads[i], split[i], quota, slos[i]);

    cfg.decision_window = spec.opts.window;
    cfg.harvest_bw_levels.clear();
    cfg.harvestable_bw_levels.clear();
    for (int lvl = 0; lvl <= 8; lvl += 2) {
        cfg.harvest_bw_levels.push_back(geo.channelBandwidthMBps() *
                                        lvl);
        cfg.harvestable_bw_levels.push_back(
            geo.channelBandwidthMBps() * lvl);
    }
    FleetIoController ctrl(cfg, tb.eq(), tb.vssds(), tb.gsb());
    for (auto *v : tb.vssds().active())
        ctrl.addVssd(*v, alphaForKind(tb.tenantKind(v->id())));
    ctrl.start();

    tb.warmupFill();
    tb.startWorkloads();
    tb.run(spec.warm_run);
    tb.run(SimTime(600) * spec.opts.window);  // pre-training
    ctrl.setTraining(false);
    tb.beginMeasurement();
    tb.run(spec.measure);
    tb.endMeasurement();
    ctrl.stop();

    Row row;
    row.util = tb.avgUtilization();
    for (auto *v : tb.vssds().active()) {
        if (isBandwidthIntensive(tb.tenantKind(v->id())))
            row.bi_bw = v->bandwidth().totalMBps(spec.measure);
        else
            row.ls_p99 = double(v->latency().quantile(0.99));
    }
    return row;
}

FleetIoConfig
baseCfg()
{
    FleetIoConfig cfg;
    cfg.teacher_windows = 400;
    cfg.ppo.adam.lr = 3e-5;
    cfg.ppo.ent_coef = 0.002;
    return cfg;
}

}  // namespace

int
main(int argc, char **argv)
{
    banner("Design ablations: beta, state stacking, admission batch");
    BenchReport report("ablation_design");
    report.setJobs(benchJobs());

    const std::vector<WorkloadKind> pair = {WorkloadKind::kVdiWeb,
                                            WorkloadKind::kTeraSort};

    // Enumerate every ablation cell, then fan out through the pool.
    struct Cell
    {
        std::string what, setting;
        FleetIoConfig cfg;
    };
    std::vector<Cell> cells;
    for (double beta : {1.0, 0.6, 0.2}) {
        FleetIoConfig cfg = baseCfg();
        cfg.beta = beta;
        cells.push_back({"beta (Eq. 2)", fmtDouble(beta, 1), cfg});
    }
    for (int stack : {1, 3}) {
        FleetIoConfig cfg = baseCfg();
        cfg.state_stack = stack;
        cells.push_back(
            {"state stacking", std::to_string(stack) + " windows",
             cfg});
    }
    for (SimTime batch : {msec(10), msec(50), msec(200)}) {
        FleetIoConfig cfg = baseCfg();
        cfg.admission_batch = batch;
        cells.push_back({"admission batch",
                         fmtDouble(toMillis(batch), 0) + " ms", cfg});
    }
    const auto rows = parallelMap(cells, [&](const Cell &c) {
        return runCustom(pair, c.cfg);
    });

    Table t({"ablation", "setting", "avg util", "LS P99", "BI BW"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Row &r = rows[i];
        t.addRow({cells[i].what, cells[i].setting, fmtPercent(r.util),
                  fmtLatencyMs(SimTime(r.ls_p99)),
                  fmtDouble(r.bi_bw, 1) + " MB/s"});
        report.addCell(cells[i].what + " = " + cells[i].setting,
                       {{"avg_util", r.util},
                        {"ls_p99_ns", r.ls_p99},
                        {"bi_bw_mbps", r.bi_bw}});
    }
    t.print(std::cout);
    std::cout << "\nPaper defaults: beta 0.6, 3 stacked windows, 50 ms "
                 "admission batches.\n";
    return report.finish(argc, argv);
}
