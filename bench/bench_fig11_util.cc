/**
 * @file
 * Figure 11 reproduction: average device bandwidth utilization of every
 * policy on every workload pair. Paper: FleetIO improves utilization
 * over the static policies by up to 1.39x, reaching ~93 % of Software
 * Isolation's (best) utilization.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main(int argc, char **argv)
{
    banner("Figure 11: storage utilization by policy");
    BenchReport report("fig11_util");
    report.setJobs(benchJobs());

    const auto pairs = evaluationPairs();
    const auto policies = mainPolicies();
    std::vector<ExperimentSpec> specs;
    for (const auto &pair : pairs) {
        for (PolicyKind pk : policies)
            specs.push_back(makeSpec(pair, pk));
    }
    const auto results = runExperiments(specs);

    Table t({"pair", "HW", "SSDKeeper", "Adaptive", "SW", "FleetIO",
             "FleetIO/SW"});
    double frac_sum = 0;
    int n = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &pair = pairs[i];
        std::vector<double> utils;
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto &res = results[i * policies.size() + p];
            report.addCell(pairLabel(pair), res);
            utils.push_back(res.avg_util);
        }
        const double fleet_vs_sw = normalizeTo(utils[4], utils[3]);
        frac_sum += fleet_vs_sw;
        ++n;
        t.addRow({pairLabel(pair), fmtPercent(utils[0]),
                  fmtPercent(utils[1]), fmtPercent(utils[2]),
                  fmtPercent(utils[3]), fmtPercent(utils[4]),
                  fmtPercent(fleet_vs_sw)});
    }
    t.print(std::cout);
    std::cout << "\nFleetIO reaches " << fmtPercent(frac_sum / n)
              << " of Software Isolation's utilization on average "
                 "(paper: ~93%).\n";
    report.setMetric("fleetio_vs_sw_util_avg", frac_sum / n);
    return report.finish(argc, argv);
}
