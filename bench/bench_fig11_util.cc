/**
 * @file
 * Figure 11 reproduction: average device bandwidth utilization of every
 * policy on every workload pair. Paper: FleetIO improves utilization
 * over the static policies by up to 1.39x, reaching ~93 % of Software
 * Isolation's (best) utilization.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main()
{
    banner("Figure 11: storage utilization by policy");
    Table t({"pair", "HW", "SSDKeeper", "Adaptive", "SW", "FleetIO",
             "FleetIO/SW"});
    double frac_sum = 0;
    int n = 0;
    for (const auto &pair : evaluationPairs()) {
        std::vector<double> utils;
        for (PolicyKind pk : mainPolicies())
            utils.push_back(runExperiment(makeSpec(pair, pk)).avg_util);
        const double fleet_vs_sw = normalizeTo(utils[4], utils[3]);
        frac_sum += fleet_vs_sw;
        ++n;
        t.addRow({pairLabel(pair), fmtPercent(utils[0]),
                  fmtPercent(utils[1]), fmtPercent(utils[2]),
                  fmtPercent(utils[3]), fmtPercent(utils[4]),
                  fmtPercent(fleet_vs_sw)});
    }
    t.print(std::cout);
    std::cout << "\nFleetIO reaches " << fmtPercent(frac_sum / n)
              << " of Software Isolation's utilization on average "
                 "(paper: ~93%).\n";
    return 0;
}
