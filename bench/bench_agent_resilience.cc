/**
 * @file
 * Agent-resilience sweep (DESIGN.md §8): the FleetIO stack with agents
 * deliberately broken mid-run — NaN weight corruption and divergent
 * reward spikes — under the supervision layer and as an unsupervised
 * control. Verdicts: the supervised run must trip, force-release the
 * quarantined agent's harvest leases within one decision window, keep
 * the victim tenant at (or above) its SoftwareIsolation-level
 * bandwidth, and leave the collocated tenant's SLO intact; the
 * unsupervised control must demonstrably violate at least one of those
 * — otherwise the watchdog is dead weight.
 *
 * --smoke shrinks training/measurement for the ctest registration.
 */
#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "bench/bench_common.h"
#include "src/policies/fleetio_policy.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

enum class Inject { kNone, kNaNWeights, kRewardSpike };

struct Arm
{
    std::string label;
    Inject inject = Inject::kNone;
    bool supervise = true;
};

struct Shape
{
    int train_windows = 600;
    SimTime warm = sec(2);
    SimTime measure = sec(10);
};

struct Outcome
{
    double victim_bw = 0;   ///< BI tenant carrying the broken agent
    double peer_vio = 0;    ///< collocated LS tenant's SLO violation
    double peer_bw = 0;
    double victim_vio = 0;
    std::uint32_t held_before = 0;  ///< staged lease, pre-injection
    std::uint32_t held_after = 0;   ///< one window post-injection
    bool healthy_at_end = true;
    SupervisionStats stats{};
    std::uint64_t sim_events = 0;
};

Outcome
run(const Arm &arm, const Shape &shape)
{
    ExperimentSpec spec = makeSpec(
        {WorkloadKind::kVdiWeb, WorkloadKind::kTeraSort},
        PolicyKind::kFleetIo);
    spec.warm_run = shape.warm;
    spec.measure = shape.measure;
    std::vector<SimTime> slos;
    for (WorkloadKind k : spec.workloads)
        slos.push_back(calibratedSlo(k, spec.workloads.size(),
                                     spec.opts));

    Testbed tb(spec.opts);
    FleetIoPolicy::Variant var;
    var.supervise = arm.supervise;
    var.train_windows = shape.train_windows;
    var.display_name =
        arm.supervise ? "FleetIO" : "FleetIO (unsupervised)";
    FleetIoPolicy policy(var);
    policy.setup(tb, spec.workloads, slos);
    tb.warmupFill();
    tb.startWorkloads();
    tb.run(spec.warm_run);
    policy.prepare(tb);
    policy.beforeMeasure(tb);
    tb.beginMeasurement();

    const SimTime window = tb.options().window;
    SimTime used = spec.measure / 4;
    tb.run(used);

    FleetIoController *ctl = policy.controller();
    const auto tenants = tb.vssds().active();
    const VssdId peer = tenants[0]->id();
    const VssdId victim = tenants[1]->id();

    Outcome out;
    if (arm.inject == Inject::kNaNWeights) {
        // Stage a real harvest lease so the quarantine's forced
        // release is observable, then poison the weights.
        const double lease_bw =
            tb.device().geometry().channelBandwidthMBps() * 4;
        tb.gsb().makeHarvestable(peer, lease_bw);
        tb.gsb().harvest(victim, lease_bw);
        out.held_before = tb.gsb().heldChannels(victim);
        auto &w = ctl->agent(victim)->policy().params().rawValues();
        for (std::size_t k = 0; k < w.size(); k += 37)
            w[k] = std::numeric_limits<double>::quiet_NaN();
        // One decision window (plus slack for the tick itself): the
        // watchdog must trip and release the lease within it.
        tb.run(window + window / 10);
        used += window + window / 10;
        out.held_after = tb.gsb().heldChannels(victim);
    } else if (arm.inject == Inject::kRewardSpike) {
        ctl->setRewardHook([victim](VssdId id, double r) {
            return id == victim ? 1e9 : r;
        });
        tb.run(3 * window);
        used += 3 * window;
        ctl->setRewardHook(nullptr);
    }
    if (used < spec.measure)
        tb.run(spec.measure - used);
    tb.endMeasurement();

    out.victim_bw = tenants[1]->bandwidth().totalMBps(spec.measure);
    out.peer_bw = tenants[0]->bandwidth().totalMBps(spec.measure);
    out.peer_vio = tenants[0]->latency().sloViolation();
    out.victim_vio = tenants[1]->latency().sloViolation();
    out.stats = ctl->supervisionStats();
    if (ctl->supervisor() != nullptr) {
        out.healthy_at_end =
            ctl->supervisor()->state(victim) ==
            AgentSupervisor::AgentState::kHealthy;
    }
    out.sim_events = tb.eq().dispatched();
    return out;
}

bool
verdict(bool cond, const std::string &what)
{
    std::cout << (cond ? "PASS: " : "FAIL: ") << what << "\n";
    return cond;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    banner("Agent resilience: supervised vs unsupervised agents under "
           "injected divergence");
    BenchReport report("agent_resilience");
    report.setJobs(benchJobs());

    Shape shape;
    if (smoke) {
        shape.train_windows = 80;
        shape.warm = sec(1);
        shape.measure = sec(4);
    } else {
        shape.measure = measureDuration();
    }

    const std::vector<Arm> arms = {
        {"fault-free", Inject::kNone, true},
        {"corrupt/supervised", Inject::kNaNWeights, true},
        {"corrupt/unsupervised", Inject::kNaNWeights, false},
        {"spike/supervised", Inject::kRewardSpike, true},
    };
    const auto outs = parallelMap(
        arms, [&shape](const Arm &a) { return run(a, shape); });

    // SoftwareIsolation baseline: the bandwidth floor a quarantined
    // tenant must never sink below.
    ExperimentSpec swiso = makeSpec(
        {WorkloadKind::kVdiWeb, WorkloadKind::kTeraSort},
        PolicyKind::kSoftwareIsolation);
    swiso.warm_run = shape.warm;
    swiso.measure = shape.measure;
    const ExperimentResult sw = runExperiment(swiso);
    const double sw_victim_bw = sw.tenants[1].avg_bw_mbps;

    Table t({"arm", "victim BW", "peer BW", "peer vio", "trips",
             "restores", "fallback", "leases", "held pre/post"});
    for (std::size_t i = 0; i < arms.size(); ++i) {
        const Outcome &o = outs[i];
        t.addRow({arms[i].label, fmtDouble(o.victim_bw, 1),
                  fmtDouble(o.peer_bw, 1), fmtPercent(o.peer_vio),
                  std::to_string(o.stats.trips),
                  std::to_string(o.stats.restores),
                  std::to_string(o.stats.fallback_windows),
                  std::to_string(o.stats.lease_releases),
                  std::to_string(o.held_before) + "/" +
                      std::to_string(o.held_after)});
    }
    t.addRow({"sw-isolation", fmtDouble(sw_victim_bw, 1),
              fmtDouble(sw.tenants[0].avg_bw_mbps, 1),
              fmtPercent(sw.tenants[0].slo_violation), "-", "-", "-",
              "-", "-"});
    t.print(std::cout);
    std::cout << '\n';

    const Outcome &ff = outs[0];
    const Outcome &cs = outs[1];
    const Outcome &cu = outs[2];
    const Outcome &rs = outs[3];

    bool ok = true;
    ok &= verdict(ff.stats.trips == 0,
                  "healthy supervised run never trips");
    ok &= verdict(cs.stats.trips >= 1,
                  "watchdog trips on NaN weight corruption");
    ok &= verdict(cs.held_before > 0,
                  "lease staging held channels before corruption");
    ok &= verdict(cs.held_after == 0 && cs.stats.lease_releases >= 1,
                  "quarantine force-releases leases within one window");
    ok &= verdict(cs.healthy_at_end,
                  "corrupted agent restored and back to healthy");
    // The deterministic-behaviour floor. In this scaled-down testbed
    // SoftwareIsolation lets the BI tenant burst across every channel,
    // so the binding floor is the lower of the SW-isolation level and
    // the fault-free FleetIO level (the paper's full-size device has
    // SW-isolation as the lower bar).
    const double bw_floor =
        0.9 * std::min(sw_victim_bw, ff.victim_bw);
    ok &= verdict(cs.victim_bw >= bw_floor,
                  "quarantined tenant BW stays at the deterministic "
                  "isolation floor");
    ok &= verdict(cs.peer_vio <= ff.peer_vio + 0.15,
                  "collocated tenant SLO intact under supervision");
    const bool control_violates =
        cu.victim_bw < bw_floor ||
        cu.peer_vio > ff.peer_vio + 0.15 || cu.held_after > 0;
    ok &= verdict(control_violates,
                  "unsupervised control demonstrably violates "
                  "(BW floor, peer SLO, or stuck leases)");
    ok &= verdict(cu.stats.trips == 0,
                  "control arm really ran without supervision");
    ok &= verdict(rs.stats.trips >= 1 && rs.healthy_at_end,
                  "reward spike trips the watchdog and recovers");
    ok &= verdict(rs.peer_vio <= ff.peer_vio + 0.15,
                  "reward spike leaves collocated SLO intact");

    std::cout << "\nExpected shape: only the injected arms trip; the "
                 "supervised arms degrade to deterministic isolation "
                 "and recover, the control does not.\n";

    for (std::size_t i = 0; i < arms.size(); ++i) {
        const Outcome &o = outs[i];
        report.addCell(arms[i].label,
                       {{"victim_bw_mbps", o.victim_bw},
                        {"peer_bw_mbps", o.peer_bw},
                        {"peer_slo_vio", o.peer_vio},
                        {"victim_slo_vio", o.victim_vio},
                        {"agent_trips", double(o.stats.trips)},
                        {"agent_restores", double(o.stats.restores)},
                        {"agent_fallback_windows",
                         double(o.stats.fallback_windows)},
                        {"agent_lease_releases",
                         double(o.stats.lease_releases)},
                        {"held_after", double(o.held_after)}},
                       o.sim_events);
    }
    report.addCell("sw-isolation", sw);
    report.setMetric("resilience_ok", ok ? 1.0 : 0.0);
    const int regress = report.finish(argc, argv);
    return ok ? regress : 1;
}
