/**
 * @file
 * Figure 10 reproduction: the utilization-vs-tail-latency trade-off of
 * all five policies over the six workload pairs. Paper result: FleetIO
 * improves utilization over Hardware Isolation by up to 1.39x (1.30x
 * avg) while keeping P99 within ~1.2x of Hardware Isolation and well
 * below Software Isolation / Adaptive (1.76x / 2.03x).
 */
#include <map>

#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main(int argc, char **argv)
{
    banner("Figure 10: utilization vs P99 trade-off (all policies)");
    BenchReport report("fig10_tradeoff");
    report.setJobs(benchJobs());

    const auto pairs = evaluationPairs();
    const auto policies = mainPolicies();
    std::vector<ExperimentSpec> specs;
    for (const auto &pair : pairs) {
        for (PolicyKind pk : policies)
            specs.push_back(makeSpec(pair, pk));
    }
    const auto results = runExperiments(specs);

    Table t({"pair", "policy", "util gain vs HW",
             "LS P99 (norm. to HW)"});
    std::map<std::string, std::pair<double, double>> policy_sums;
    std::map<std::string, int> policy_counts;

    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &pair = pairs[i];
        // mainPolicies() leads with hardware isolation, the baseline.
        const auto &hw = results[i * policies.size()];
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto &res = results[i * policies.size() + p];
            report.addCell(pairLabel(pair), res);
            const double util_gain =
                normalizeTo(res.avg_util, hw.avg_util);
            const double p99_norm =
                normalizeTo(res.meanLatencySensitiveP99(),
                            hw.meanLatencySensitiveP99());
            t.addRow({pairLabel(pair), res.policy,
                      fmtDouble(util_gain) + "x",
                      fmtDouble(p99_norm) + "x"});
            policy_sums[res.policy].first += util_gain;
            policy_sums[res.policy].second += p99_norm;
            ++policy_counts[res.policy];
        }
    }
    t.print(std::cout);

    std::cout << "\nScatter centroids (cf. Fig. 10 markers):\n";
    Table c({"policy", "mean util gain", "mean norm. P99"});
    for (const auto &[name, sums] : policy_sums) {
        const int n = policy_counts[name];
        c.addRow({name, fmtDouble(sums.first / n) + "x",
                  fmtDouble(sums.second / n) + "x"});
    }
    c.print(std::cout);
    std::cout << "\nExpected shape: FleetIO sits upper-left — more "
                 "utilization than HW/SSDKeeper at far lower P99 than "
                 "SW/Adaptive.\n";
    return report.finish(argc, argv);
}
