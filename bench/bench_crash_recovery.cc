/**
 * @file
 * Crash-recovery chaos matrix (DESIGN.md §12): scheduled power loss
 * (by sim-time or inside a GC / churn phase) crossed with injected
 * NAND faults, durable-metadata damage (torn checkpoint slot, torn
 * journal tail), and tenant churn. Each cell runs the full FleetIO
 * stack with RL agents checkpointing to disk; the matrix verdicts are
 *
 *   zero loss    — no acknowledged write disappears across the crash,
 *   exact rebuild— the recovered L2P map and HarvestedBlockTable are
 *                  identical to the pre-crash shadow model,
 *   integrity    — every surviving mapping resolves to a valid,
 *                  non-retired page whose reverse map points back,
 *   bounded RPO  — the checkpoint cadence bounds the recovery point
 *                  (2x when the current slot is deliberately torn),
 *   bounded RTO  — the analytic scan+replay rebuild cost stays under a
 *                  fixed ceiling and I/O resumes afterwards,
 *   agents       — RL agents reload their last on-disk snapshot,
 *   churn        — removals racing the crash still run to completion,
 *   determinism  — crashed and crash-free cells rerun bit-identically.
 *
 * --smoke shrinks training/measurement for the ctest registration.
 */
#include <cctype>
#include <cstring>
#include <filesystem>

#include "bench/bench_common.h"
#include "src/policies/fleetio_policy.h"
#include "src/virt/channel_allocator.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

struct Shape
{
    int train_windows = 600;
    SimTime warm = sec(2);
    SimTime measure = sec(18);
};

struct Cell
{
    std::string label;
    CrashPlan plan{};               ///< trigger disabled = no-crash arm
    bool churn = false;             ///< schedule a removal mid-measure
    bool corrupt_checkpoint = false;
    bool torn_journal = false;
    double warmup_fill = 0.0;       ///< 0 = testbed default
    double intensity = 0.0;         ///< 0 = testbed default
    FaultConfig faults{};
};

struct Outcome
{
    bool recovered = false;
    RecoveryReport report{};
    std::uint64_t dispatched = 0;
    std::vector<std::uint64_t> tenant_bytes;
    ChurnStats churn{};
    bool removed_quiesced = true;
    bool mappings_intact = true;
    double util = 0;
};

/** Walk every surviving tenant's map: each mapped LPA must resolve to
 *  a valid, non-retired page whose reverse map points straight back. */
bool
verifyMappings(Testbed &tb)
{
    const auto &geo = tb.device().geometry();
    for (auto *v : tb.vssds().active()) {
        Ftl &ftl = v->ftl();
        for (Lpa lpa = 0; lpa < ftl.logicalPages(); ++lpa) {
            const Ppa ppa = ftl.lookup(lpa);
            if (ppa == kNoPpa)
                continue;
            const FlashBlock &blk = tb.device().blockOf(ppa);
            if (blk.state == BlockState::kRetired)
                return false;
            if (!blk.valid[geo.pageOf(ppa)])
                return false;
            const RmapEntry &r = tb.device().rmap(ppa);
            if (r.data_vssd != v->id() || r.lpa != lpa)
                return false;
        }
    }
    return true;
}

ChurnEvent
removal(SimTime at, VssdId id)
{
    ChurnEvent ev;
    ev.at = at;
    ev.kind = ChurnEvent::Kind::kRemove;
    ev.remove_id = id;
    return ev;
}

/** Per-cell scratch dir for the RL agents' on-disk CheckpointStores
 *  (cells run concurrently under parallelMap, so they must not share
 *  files; the determinism rerun wipes and reuses its cell's dir). */
std::string
checkpointDir(const std::string &label)
{
    std::string slug;
    for (char c : label)
        slug += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c
                                                                   : '_';
    const auto dir = std::filesystem::temp_directory_path() /
                     ("fleetio_bench_crash_" + slug);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);
    return dir.string();
}

Outcome
run(const Cell &cell, const Shape &shape)
{
    ExperimentSpec spec = makeSpec(
        {WorkloadKind::kVdiWeb, WorkloadKind::kYcsbB},
        PolicyKind::kFleetIo);
    spec.opts.faults = cell.faults;
    spec.warm_run = shape.warm;
    spec.measure = shape.measure;
    if (cell.warmup_fill > 0.0)
        spec.opts.warmup_fill = cell.warmup_fill;
    if (cell.intensity > 0.0)
        spec.opts.intensity = cell.intensity;

    spec.opts.crash.plan = cell.plan;
    spec.opts.crash.corrupt_checkpoint = cell.corrupt_checkpoint;
    spec.opts.crash.torn_journal_tail = cell.torn_journal;
    if (cell.churn)
        spec.opts.churn.schedule.push_back(
            removal(msec(300), VssdId(1)));

    std::vector<SimTime> slos;
    for (WorkloadKind k : spec.workloads)
        slos.push_back(calibratedSlo(k, spec.workloads.size(),
                                     spec.opts));

    Testbed tb(spec.opts);
    FleetIoPolicy::Variant var;
    var.train_windows = shape.train_windows;
    FleetIoPolicy policy(var);
    policy.setup(tb, spec.workloads, slos);
    // Recovery reloads agents from their last on-disk snapshot; wire
    // the controller into the testbed and give it a store per agent.
    tb.setController(policy.controller());
    policy.controller()->setCheckpointDir(checkpointDir(cell.label),
                                          /*interval_windows=*/2);
    tb.warmupFill();
    tb.startWorkloads();
    tb.run(spec.warm_run);
    policy.prepare(tb);
    policy.beforeMeasure(tb);
    tb.beginMeasurement();
    tb.startChurn();
    tb.run(spec.measure);
    tb.endMeasurement();

    Outcome out;
    out.recovered = tb.recovered();
    out.report = tb.recoveryReport();
    out.dispatched = tb.eq().dispatched();
    out.util = tb.avgUtilization();
    for (auto *v : tb.vssds().active())
        out.tenant_bytes.push_back(v->bandwidth().totalBytes());
    out.mappings_intact = verifyMappings(tb);
    if (ElasticTenancyManager *el = tb.elastic()) {
        out.churn = el->stats();
        for (VssdId id = 0; id < VssdId(tb.vssds().size()); ++id) {
            if (!tb.vssds().alive(id) &&
                !tb.scheduler().tenantQuiesced(id)) {
                out.removed_quiesced = false;
            }
        }
    }
    return out;
}

bool
sameOutcome(const Outcome &a, const Outcome &b)
{
    return a.recovered == b.recovered &&
           a.dispatched == b.dispatched &&
           a.tenant_bytes == b.tenant_bytes && a.util == b.util &&
           a.report.crash_time == b.report.crash_time &&
           a.report.rpo_ns == b.report.rpo_ns &&
           a.report.rto_ns == b.report.rto_ns &&
           a.report.scanned_pages == b.report.scanned_pages &&
           a.report.replayed_records == b.report.replayed_records &&
           a.report.restored_mappings == b.report.restored_mappings;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    banner("Crash-consistent recovery: power loss x NAND faults x "
           "metadata damage x tenant churn");
    BenchReport report("crash_recovery");
    report.setJobs(benchJobs());

    Shape shape;
    if (smoke) {
        shape.train_windows = 80;
        shape.warm = sec(1);
        shape.measure = sec(4);
    } else {
        shape.measure = measureDuration();
    }
    // Mid-measure power loss, absolute sim time (warmup included).
    const SimTime crash_at = shape.warm + shape.measure / 3;

    FaultConfig med;
    med.read_retry_prob = 1e-2;
    med.program_fail_prob = 1e-3;
    med.erase_fail_prob = 1e-2;
    med.chip_slowdown_prob = 1e-3;
    med.wear_error_growth = 1e-5;

    CrashPlan at_time;
    at_time.trigger = CrashPlan::Trigger::kSimTime;
    at_time.at = crash_at;

    CrashPlan in_gc;
    in_gc.trigger = CrashPlan::Trigger::kPhase;
    in_gc.phase = CrashPhase::kGcMigration;
    in_gc.phase_skip = 25;

    CrashPlan in_drain;
    in_drain.trigger = CrashPlan::Trigger::kPhase;
    in_drain.phase = CrashPhase::kChurnDrain;

    CrashPlan in_teardown;
    in_teardown.trigger = CrashPlan::Trigger::kPhase;
    in_teardown.phase = CrashPhase::kChurnTeardown;

    std::vector<Cell> cells;
    cells.push_back({"no-crash", {}, false, false, false, 0, 0, {}});
    cells.push_back({"crash", at_time, false, false, false, 0, 0, {}});
    cells.push_back(
        {"crash+faults", at_time, false, false, false, 0, 0, med});
    cells.push_back(
        {"crash@gc", in_gc, false, false, false, 0.92, 6.0, {}});
    cells.push_back(
        {"crash@drain+churn", in_drain, true, false, false, 0, 0, {}});
    cells.push_back({"crash@teardown+churn+faults", in_teardown, true,
                     false, false, 0, 0, med});
    cells.push_back(
        {"crash+torn-ckpt", at_time, false, true, false, 0, 0, {}});
    cells.push_back(
        {"crash+torn-journal", at_time, false, false, true, 0, 0, {}});

    auto outs = parallelMap(
        cells, [&shape](const Cell &c) { return run(c, shape); });

    // Determinism arms: the plain crash cell and the crash-free
    // baseline, each a second time. The latter pins the guarantee that
    // runs with no crash schedule behave identically build-to-build.
    const std::vector<Cell> rerun_cells{cells[1], cells[0]};
    auto reruns = parallelMap(rerun_cells, [&shape](const Cell &c) {
        return run(c, shape);
    });
    const bool crash_deterministic = sameOutcome(outs[1], reruns[0]);
    const bool clean_deterministic = sameOutcome(outs[0], reruns[1]);

    Table t({"cell", "recov", "RPO (ms)", "RTO (ms)", "restored",
             "scanned", "replay", "torn", "agents", "leases"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Outcome &o = outs[i];
        const RecoveryReport &r = o.report;
        t.addRow({cells[i].label, o.recovered ? "yes" : "-",
                  o.recovered ? fmtDouble(toMillis(r.rpo_ns), 1) : "-",
                  o.recovered ? fmtDouble(toMillis(r.rto_ns), 1) : "-",
                  std::to_string(r.restored_mappings),
                  std::to_string(r.scanned_pages),
                  std::to_string(r.replayed_records),
                  std::to_string(r.torn_records),
                  std::to_string(r.agents_restored),
                  std::to_string(r.leases_reconciled)});
    }
    t.print(std::cout);
    std::cout << '\n';

    bool ok = true;
    auto verdict = [&ok](bool pass, const std::string &what) {
        std::cout << (pass ? "PASS: " : "FAIL: ") << what << '\n';
        ok = ok && pass;
    };

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Outcome &o = outs[i];
        const RecoveryReport &r = o.report;
        const std::string &l = cells[i].label;
        verdict(o.mappings_intact, l + ": end-state mappings intact");
        if (!cells[i].plan.enabled()) {
            verdict(!o.recovered && r.crash_time == 0,
                    l + ": no crash machinery engaged");
            continue;
        }
        verdict(o.recovered, l + ": power loss fired and recovered");
        if (!o.recovered)
            continue;
        verdict(r.acked_lost == 0,
                l + ": zero acknowledged writes lost");
        verdict(r.map_matches_shadow,
                l + ": rebuilt L2P map == pre-crash shadow");
        verdict(r.hbt_matches_shadow,
                l + ": rebuilt HBT == pre-crash shadow");
        verdict(r.restored_mappings > 0,
                l + ": scan restored mappings");
        // The device checkpoint cadence bounds the RPO; a torn current
        // slot falls back one cadence further.
        const std::uint64_t cadence = msec(50);
        verdict(r.rpo_ns <=
                    (cells[i].corrupt_checkpoint ? 2 * cadence
                                                 : cadence),
                l + ": RPO within the checkpoint cadence");
        verdict(r.rto_ns > 0 && r.rto_ns <= sec(2),
                l + ": RTO bounded");
        verdict(r.agents_restored > 0,
                l + ": RL agents reloaded from disk snapshots");
        bool progressed = !o.tenant_bytes.empty();
        for (std::uint64_t bytes : o.tenant_bytes)
            progressed = progressed && bytes > 0;
        verdict(progressed, l + ": tenants resumed I/O after recovery");
        if (cells[i].corrupt_checkpoint)
            verdict(r.checkpoint_fallback,
                    l + ": torn slot fell back to the previous "
                        "checkpoint");
        if (cells[i].churn) {
            verdict(o.churn.removals_completed ==
                        o.churn.removals_requested,
                    l + ": removal racing the crash ran to "
                        "completion");
            verdict(o.removed_quiesced,
                    l + ": removed tenants fully quiesced");
        }
    }
    verdict(crash_deterministic,
            "identical crashed cell reruns bit-identically");
    verdict(clean_deterministic,
            "crash-free baseline reruns bit-identically");

    std::cout << "\nExpected shape: every crashed cell rebuilds the "
                 "exact pre-crash map from checkpoint+journal+scan "
                 "with zero acked loss, RPO under the checkpoint "
                 "cadence, analytic RTO under the ceiling, and both "
                 "arms bit-identical on rerun.\n";

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Outcome &o = outs[i];
        report.addCell(cells[i].label,
                       {{"recovered", o.recovered ? 1.0 : 0.0},
                        {"rpo_ms", toMillis(o.report.rpo_ns)},
                        {"rto_ms", toMillis(o.report.rto_ns)},
                        {"restored_mappings",
                         double(o.report.restored_mappings)},
                        {"scanned_pages",
                         double(o.report.scanned_pages)},
                        {"acked_lost", double(o.report.acked_lost)},
                        {"agents_restored",
                         double(o.report.agents_restored)},
                        {"leases_reconciled",
                         double(o.report.leases_reconciled)},
                        {"mappings_intact",
                         o.mappings_intact ? 1.0 : 0.0}});
    }
    report.setMetric("verdicts_ok", ok ? 1.0 : 0.0);
    const int regress = report.finish(argc, argv);
    return ok ? regress : 1;
}
