/**
 * @file
 * Figure 2 reproduction: SSD bandwidth utilization (average + P95) of
 * hardware vs software isolation across the six workload pairs.
 * Paper result: software isolation improves average utilization by up
 * to 1.52x (1.39x on average).
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main(int argc, char **argv)
{
    banner("Figure 2: utilization, Hardware vs Software Isolation");
    BenchReport report("fig02_motivation_util");
    report.setJobs(benchJobs());

    const auto pairs = evaluationPairs();
    std::vector<ExperimentSpec> specs;
    for (const auto &pair : pairs) {
        specs.push_back(makeSpec(pair, PolicyKind::kHardwareIsolation));
        specs.push_back(makeSpec(pair, PolicyKind::kSoftwareIsolation));
    }
    const auto results = runExperiments(specs);

    Table t({"pair", "HW avg util", "HW p95", "SW avg util", "SW p95",
             "SW/HW"});
    double ratio_sum = 0, ratio_max = 0;
    int n = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &pair = pairs[i];
        const auto &hw = results[2 * i];
        const auto &sw = results[2 * i + 1];
        report.addCell(pairLabel(pair), hw);
        report.addCell(pairLabel(pair), sw);
        const double ratio = normalizeTo(sw.avg_util, hw.avg_util);
        ratio_sum += ratio;
        ratio_max = std::max(ratio_max, ratio);
        ++n;
        t.addRow({pairLabel(pair), fmtPercent(hw.avg_util),
                  fmtPercent(hw.p95_util), fmtPercent(sw.avg_util),
                  fmtPercent(sw.p95_util), fmtDouble(ratio) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nSoftware-isolation utilization improvement: avg "
              << fmtDouble(ratio_sum / n) << "x, max "
              << fmtDouble(ratio_max)
              << "x  (paper: 1.39x avg, up to 1.52x)\n";
    report.setMetric("sw_util_gain_avg", ratio_sum / n);
    report.setMetric("sw_util_gain_max", ratio_max);
    return report.finish(argc, argv);
}
