/**
 * @file
 * Perf-tracking smoke bench: microbenchmarks of the simulator's hot
 * paths plus one small end-to-end cell, emitting BENCH_perf_smoke.json
 * so the events/sec trajectory is comparable across commits. Registered
 * as a fast ctest so every CI run records the numbers.
 *
 * The event-queue section also runs a std::function-per-event baseline
 * queue (the pre-InlineFunction design, one heap allocation per
 * scheduled callback) so the JSON quantifies what the small-buffer
 * callback rework buys.
 */
#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>

#include "bench/bench_common.h"
#include "src/ssd/ftl.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The pre-rework event queue: identical heap/comparator, but callbacks
 * boxed in std::function, so every capture beyond the SSO threshold is
 * a malloc at schedule time and a free at dispatch.
 */
class BaselineEventQueue
{
  public:
    void scheduleAt(SimTime when, std::function<void()> cb)
    {
        heap_.push(Event{when, seq_++, std::move(cb)});
    }

    bool step()
    {
        if (heap_.empty())
            return false;
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ev.cb();
        return true;
    }

    SimTime now() const { return now_; }

  private:
    struct Event
    {
        SimTime when;
        std::uint64_t seq;
        std::function<void()> cb;
    };
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
};

/** Payload sized past std::function's SSO so the baseline allocates,
 *  mirroring the FlashDevice completion wrappers the simulator
 *  actually schedules. */
struct Payload
{
    std::uint64_t a, b, c, d, e;
};

/** Self-rescheduling event chains through @p q until @p target events
 *  dispatched; returns events/sec. */
template <typename Queue>
double
eventQueueThroughput(Queue &q, std::uint64_t target)
{
    std::uint64_t dispatched = 0;
    std::uint64_t sink = 0;
    // 64 concurrent chains keep the heap realistically deep.
    constexpr int kChains = 64;
    std::function<void(SimTime)> arm = [&](SimTime when) {
        Payload p{dispatched, 1, 2, 3, 4};
        q.scheduleAt(when, [&, p]() {
            sink += p.a + p.e;
            ++dispatched;
            if (dispatched + kChains <= target)
                arm(q.now() + 100);
        });
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChains; ++i)
        arm(SimTime(i));
    while (q.step()) {
    }
    const double wall = secondsSince(t0);
    // sink keeps the payload live; fold it in so it cannot be elided.
    return (double(dispatched) + double(sink % 2)) / wall;
}

}  // namespace

int
main(int argc, char **argv)
{
    banner("Perf smoke: hot-path microbenchmarks + end-to-end cell");
    BenchReport report("perf_smoke");
    report.setJobs(benchJobs());

    // --- 1. Event-queue throughput (inline vs std::function) --------
    constexpr std::uint64_t kEvents = 2'000'000;
    EventQueue eq;
    const double inline_eps = eventQueueThroughput(eq, kEvents);
    BaselineEventQueue base_eq;
    const double boxed_eps = eventQueueThroughput(base_eq, kEvents);
    std::cout << "event queue: " << fmtDouble(inline_eps / 1e6, 2)
              << " M events/s inline-callback vs "
              << fmtDouble(boxed_eps / 1e6, 2)
              << " M events/s std::function baseline ("
              << fmtDouble(inline_eps / boxed_eps, 2) << "x)\n";
    report.addCell("event_queue",
                   {{"events_per_sec_inline", inline_eps},
                    {"events_per_sec_std_function", boxed_eps},
                    {"inline_speedup", inline_eps / boxed_eps}},
                   kEvents);

    // --- 2. FTL write + lookup throughput ----------------------------
    {
        const SsdGeometry geo = benchGeometry();
        EventQueue dev_eq;
        FlashDevice dev(geo, dev_eq);
        std::vector<ChannelId> chans(geo.num_channels);
        for (ChannelId c = 0; c < geo.num_channels; ++c)
            chans[c] = c;
        Ftl ftl(dev, Ftl::Config{0, geo.totalBlocks(), chans});

        const std::uint64_t writes = ftl.logicalPages();
        auto t0 = std::chrono::steady_clock::now();
        Ppa ppa = kNoPpa;
        std::uint64_t written = 0;
        for (Lpa lpa = 0; lpa < writes; ++lpa)
            written += ftl.allocateWrite(lpa, ppa);
        const double write_ops = double(written) / secondsSince(t0);

        t0 = std::chrono::steady_clock::now();
        std::uint64_t hits = 0;
        for (int pass = 0; pass < 4; ++pass) {
            for (Lpa lpa = 0; lpa < writes; ++lpa)
                hits += ftl.lookup(lpa) != kNoPpa;
        }
        const double lookup_ops = double(hits) / secondsSince(t0);

        std::cout << "FTL: " << fmtDouble(write_ops / 1e6, 2)
                  << " M writes/s, " << fmtDouble(lookup_ops / 1e6, 2)
                  << " M lookups/s (" << written << " pages)\n";
        report.addCell("ftl",
                       {{"write_ops_per_sec", write_ops},
                        {"lookup_ops_per_sec", lookup_ops},
                        {"pages_written", double(written)}});
    }

    // --- 3. One small 2-tenant end-to-end cell ------------------------
    {
        ExperimentSpec spec =
            makeSpec({WorkloadKind::kVdiWeb, WorkloadKind::kTeraSort},
                     PolicyKind::kHardwareIsolation);
        spec.warm_run = sec(1);
        spec.measure = sec(2);  // smoke scale, not the 18 s default
        const auto t0 = std::chrono::steady_clock::now();
        const ExperimentResult res = runExperiment(spec);
        const double wall = secondsSince(t0);
        const double eps =
            wall > 0 ? double(res.sim_events) / wall : 0.0;
        std::cout << "end-to-end (VDI-Web+TeraSort, HW isolation): "
                  << res.sim_events << " events in "
                  << fmtDouble(wall, 2) << " s = "
                  << fmtDouble(eps / 1e6, 2) << " M events/s, util "
                  << fmtPercent(res.avg_util) << "\n";
        report.addCell("end_to_end", res);
        report.setMetric("end_to_end_events_per_sec", eps);
    }

    report.setMetric("event_queue_inline_speedup",
                     inline_eps / boxed_eps);
    return report.finish(argc, argv);
}
