/**
 * @file
 * Figure 16 reproduction: FleetIO over a mixed layout — two VDI-Web
 * tenants on 4-channel hardware-isolated vSSDs, two TeraSort tenants
 * sharing 8 software-isolated channels (mix3). Paper: FleetIO improves
 * utilization 1.27x and TeraSort bandwidth 1.42x over Mixed Isolation
 * while keeping the tail-latency increase to ~1.19x.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main(int argc, char **argv)
{
    banner("Figure 16: mixed hardware- and software-isolated vSSDs");
    BenchReport report("fig16_mixed_isolation");
    report.setJobs(benchJobs());

    const std::vector<WorkloadKind> mix3 = {
        WorkloadKind::kVdiWeb, WorkloadKind::kVdiWeb,
        WorkloadKind::kTeraSort, WorkloadKind::kTeraSort};
    const std::vector<PolicyKind> policies = {
        PolicyKind::kMixedIsolation, PolicyKind::kSoftwareIsolation,
        PolicyKind::kFleetIoMixed};

    std::vector<ExperimentSpec> specs;
    for (PolicyKind pk : policies)
        specs.push_back(makeSpec(mix3, pk));
    const auto results = runExperiments(specs);

    Table t({"policy", "avg util", "VDI-Web P99 (mean)",
             "TeraSort BW (mean)"});
    const auto &base = results[0];  // Mixed Isolation leads
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const PolicyKind pk = policies[p];
        const auto &res = results[p];
        report.addCell("mix3", res);
        t.addRow({res.policy, fmtPercent(res.avg_util),
                  fmtLatencyMs(SimTime(res.meanLatencySensitiveP99())),
                  fmtDouble(res.meanBandwidthIntensiveBw(), 1) +
                      " MB/s"});
        if (pk == PolicyKind::kFleetIoMixed) {
            std::cout << "FleetIO vs Mixed Isolation: util "
                      << fmtDouble(normalizeTo(res.avg_util,
                                               base.avg_util))
                      << "x (paper 1.27x), TeraSort BW "
                      << fmtDouble(normalizeTo(
                             res.meanBandwidthIntensiveBw(),
                             base.meanBandwidthIntensiveBw()))
                      << "x (paper 1.42x), P99 "
                      << fmtDouble(normalizeTo(
                             res.meanLatencySensitiveP99(),
                             base.meanLatencySensitiveP99()))
                      << "x (paper 1.19x)\n\n";
        }
    }
    t.print(std::cout);
    return report.finish(argc, argv);
}
