/**
 * @file
 * Figure 16 reproduction: FleetIO over a mixed layout — two VDI-Web
 * tenants on 4-channel hardware-isolated vSSDs, two TeraSort tenants
 * sharing 8 software-isolated channels (mix3). Paper: FleetIO improves
 * utilization 1.27x and TeraSort bandwidth 1.42x over Mixed Isolation
 * while keeping the tail-latency increase to ~1.19x.
 */
#include "bench/bench_common.h"

using namespace fleetio;
using namespace fleetio::bench;

int
main()
{
    banner("Figure 16: mixed hardware- and software-isolated vSSDs");
    const std::vector<WorkloadKind> mix3 = {
        WorkloadKind::kVdiWeb, WorkloadKind::kVdiWeb,
        WorkloadKind::kTeraSort, WorkloadKind::kTeraSort};
    const std::vector<PolicyKind> policies = {
        PolicyKind::kMixedIsolation, PolicyKind::kSoftwareIsolation,
        PolicyKind::kFleetIoMixed};

    Table t({"policy", "avg util", "VDI-Web P99 (mean)",
             "TeraSort BW (mean)"});
    ExperimentResult base;
    for (PolicyKind pk : policies) {
        const auto res = runExperiment(makeSpec(mix3, pk));
        if (pk == PolicyKind::kMixedIsolation)
            base = res;
        t.addRow({res.policy, fmtPercent(res.avg_util),
                  fmtLatencyMs(SimTime(res.meanLatencySensitiveP99())),
                  fmtDouble(res.meanBandwidthIntensiveBw(), 1) +
                      " MB/s"});
        if (pk == PolicyKind::kFleetIoMixed) {
            std::cout << "FleetIO vs Mixed Isolation: util "
                      << fmtDouble(normalizeTo(res.avg_util,
                                               base.avg_util))
                      << "x (paper 1.27x), TeraSort BW "
                      << fmtDouble(normalizeTo(
                             res.meanBandwidthIntensiveBw(),
                             base.meanBandwidthIntensiveBw()))
                      << "x (paper 1.42x), P99 "
                      << fmtDouble(normalizeTo(
                             res.meanLatencySensitiveP99(),
                             base.meanLatencySensitiveP99()))
                      << "x (paper 1.19x)\n\n";
        }
    }
    t.print(std::cout);
    return 0;
}
