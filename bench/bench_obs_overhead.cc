/**
 * @file
 * Observability overhead bench (DESIGN.md §9): proves the tracing and
 * metrics pipeline is free when disabled and cheap when enabled.
 *
 * Verdicts:
 *  1. Parity — the same FleetIO experiment with the obs pipeline on
 *     and off produces an identical ExperimentResult (the null-guard
 *     and per-thread rings must not perturb the simulation).
 *  2. Disabled overhead < 2 % — measured as a bound, not a race of two
 *     wall clocks: the per-call cost of the null-guarded
 *     FLEETIO_TRACE_EVENT macro (microbenchmarked) times the trace-call
 *     density of a real run (calls per simulation event, read off an
 *     enabled run's recorder) over the per-event simulation cost of an
 *     untraced run. Run-to-run noise cancels out of the bound, so the
 *     verdict is stable enough for CI.
 *  3. (informational) Enabled overhead — wall-clock ratio of a fully
 *     traced+metered run over an untraced run of the same cell.
 *
 * --smoke shrinks durations for the ctest registration.
 */
#include <chrono>
#include <cstring>

#include "bench/bench_common.h"
#include "src/harness/testbed.h"
#include "src/obs/trace.h"
#include "src/virt/channel_allocator.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct DriveStats
{
    double wall_sec = 0;
    std::uint64_t sim_events = 0;
    std::uint64_t trace_calls = 0;  ///< recorded events (enabled runs)
};

/**
 * Two-tenant cell on the bench geometry, driven directly (no policy)
 * so the wall clock measures the instrumented I/O hot path and nothing
 * else. Only the measured section is timed; warm-up fill is outside.
 */
DriveStats
driveCell(bool obs_on, SimTime measure)
{
    TestbedOptions opts;
    opts.seed = 42;
    opts.obs.trace = obs_on;
    opts.obs.metrics = obs_on;
    Testbed tb(opts);
    const auto &geo = tb.device().geometry();
    const auto split = ChannelAllocator::equalSplit(geo, 2);
    const std::uint64_t quota = geo.totalBlocks() / 2;
    tb.addTenant(WorkloadKind::kVdiWeb, split[0], quota, msec(10));
    tb.addTenant(WorkloadKind::kTeraSort, split[1], quota, msec(10));
    tb.warmupFill();
    tb.startWorkloads();
    tb.run(msec(200));
    tb.beginMeasurement();

    const std::uint64_t events_before = tb.eq().dispatched();
    const auto t0 = std::chrono::steady_clock::now();
    tb.run(measure);
    DriveStats out;
    out.wall_sec = secondsSince(t0);
    out.sim_events = tb.eq().dispatched() - events_before;

    tb.endMeasurement();
    tb.stopWorkloads();
    if (tb.tracer() != nullptr)
        out.trace_calls = tb.tracer()->eventCount();
    return out;
}

/**
 * Per-call cost of the disabled macro: the pointer lives behind
 * volatile so the compiler must re-load and re-test it per iteration,
 * exactly like the member-load + branch at a real call site.
 */
double
disabledMacroNs(std::uint64_t iters)
{
    obs::TraceRecorder *volatile tracer = nullptr;
    // Baseline: the loop itself.
    volatile std::uint64_t sink = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
        sink = sink + 1;
    const double loop_sec = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        sink = sink + 1;
        FLEETIO_TRACE_EVENT(tracer, windowBoundary(i, i));
    }
    const double macro_sec = secondsSince(t0);
    const double delta = macro_sec - loop_sec;
    return delta > 0 ? delta * 1e9 / double(iters) : 0.0;
}

bool
verdict(bool cond, const std::string &what)
{
    std::cout << (cond ? "PASS: " : "FAIL: ") << what << "\n";
    return cond;
}

bool
sameResult(const ExperimentResult &x, const ExperimentResult &y)
{
    if (x.sim_events != y.sim_events || x.avg_util != y.avg_util ||
        x.p95_util != y.p95_util || x.write_amp != y.write_amp ||
        x.tenants.size() != y.tenants.size()) {
        return false;
    }
    for (std::size_t i = 0; i < x.tenants.size(); ++i) {
        if (x.tenants[i].avg_bw_mbps != y.tenants[i].avg_bw_mbps ||
            x.tenants[i].p50 != y.tenants[i].p50 ||
            x.tenants[i].p99 != y.tenants[i].p99 ||
            x.tenants[i].requests != y.tenants[i].requests ||
            x.tenants[i].slo_violation != y.tenants[i].slo_violation) {
            return false;
        }
    }
    return true;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    banner("Observability overhead: obs pipeline parity and cost");
    BenchReport report("obs_overhead");
    report.setJobs(1);

    const SimTime drive_measure = smoke ? sec(1) : sec(4);
    const std::uint64_t macro_iters =
        smoke ? 50'000'000ull : 400'000'000ull;

    // 1. Parity: the full FleetIO stack (agents, supervisor, GSB)
    //    with and without the obs pipeline.
    ExperimentSpec spec = makeSpec(
        {WorkloadKind::kVdiWeb, WorkloadKind::kTeraSort},
        PolicyKind::kFleetIo);
    if (smoke) {
        spec.warm_run = sec(1);
        spec.measure = sec(2);
    }
    const ExperimentResult res_off = runExperiment(spec);
    ExperimentSpec traced = spec;
    traced.opts.obs.trace = true;
    traced.opts.obs.metrics = true;
    const ExperimentResult res_on = runExperiment(traced);

    // 2/3. Cost: timed direct drives plus the macro microbenchmark.
    const DriveStats off = driveCell(false, drive_measure);
    const DriveStats off2 = driveCell(false, drive_measure);
    const DriveStats on = driveCell(true, drive_measure);
    const double off_sec = std::min(off.wall_sec, off2.wall_sec);
    const double macro_ns = disabledMacroNs(macro_iters);

    const double ns_per_event = off_sec * 1e9 / double(off.sim_events);
    const double calls_per_event =
        double(on.trace_calls) / double(on.sim_events);
    const double disabled_pct =
        100.0 * macro_ns * calls_per_event / ns_per_event;
    const double enabled_pct =
        100.0 * (on.wall_sec - off_sec) / off_sec;

    Table t({"quantity", "value"});
    t.addRow({"sim events (drive)", std::to_string(off.sim_events)});
    t.addRow({"ns per sim event (obs off)", fmtDouble(ns_per_event, 1)});
    t.addRow({"trace calls per sim event", fmtDouble(calls_per_event, 3)});
    t.addRow({"disabled macro cost (ns/call)", fmtDouble(macro_ns, 3)});
    t.addRow({"disabled overhead bound", fmtDouble(disabled_pct, 3) + "%"});
    t.addRow({"enabled overhead (wall)", fmtDouble(enabled_pct, 1) + "%"});
    t.print(std::cout);
    std::cout << '\n';

    bool ok = true;
    ok &= verdict(sameResult(res_off, res_on),
                  "obs on/off FleetIO results are identical");
    ok &= verdict(res_on.sim_events > 0 && on.trace_calls > 0,
                  "traced run actually recorded events");
    ok &= verdict(disabled_pct < 2.0,
                  "compiled-in-but-disabled tracing bound < 2%");
    std::cout << "\n(enabled overhead is informational: "
              << fmtDouble(enabled_pct, 1)
              << "% wall for full trace + per-window metrics)\n";

    report.addCell("drive/obs-off", {{"wall_sec", off_sec}},
                   off.sim_events);
    report.addCell("drive/obs-on", {{"wall_sec", on.wall_sec}},
                   on.sim_events);
    report.setMetric("disabled_macro_ns", macro_ns);
    report.setMetric("trace_calls_per_event", calls_per_event);
    report.setMetric("disabled_overhead_pct", disabled_pct);
    report.setMetric("enabled_overhead_pct", enabled_pct);
    report.setMetric("parity", sameResult(res_off, res_on) ? 1 : 0);
    const int regress = report.finish(argc, argv, std::cout);

    return ok ? regress : 1;
}
