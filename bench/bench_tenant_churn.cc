/**
 * @file
 * Elastic-tenancy chaos matrix: tenant churn (hot vSSD add/remove with
 * admission control and G-state degradation, DESIGN.md §11) crossed
 * with injected NAND faults and bursty arrival storms. Each cell runs
 * the full FleetIO stack; the matrix verdicts are
 *
 *   no-wedge    — every requested removal drains, scrubs, and returns
 *                 its channels; no vSSD sticks at zero free quota,
 *   integrity   — surviving tenants' LPA maps are intact even when
 *                 removals race program/erase faults,
 *   admission   — queued arrivals respect the bounded retry budget,
 *   SLO tiers   — graceful degradation engages under pressure and
 *                 never recovers more levels than it stepped down,
 *   utilization — churn keeps the device above a floor fraction of the
 *                 static baseline's utilization,
 *   determinism — an identical churn cell reruns bit-identically.
 *
 * --smoke shrinks training/measurement for the ctest registration.
 */
#include <cstring>

#include "bench/bench_common.h"
#include "src/policies/fleetio_policy.h"
#include "src/virt/channel_allocator.h"

using namespace fleetio;
using namespace fleetio::bench;

namespace {

struct Shape
{
    int train_windows = 600;
    SimTime warm = sec(2);
    SimTime measure = sec(18);
};

struct Cell
{
    std::string label;
    bool churn = false;        ///< false = static baseline
    bool burst = false;        ///< arrival storm instead of spaced churn
    bool aggressive_tiers = false;  ///< tight degradation thresholds
    FaultConfig faults{};
};

struct Outcome
{
    double util = 0;
    double agg_bw = 0;
    double slo_vio = 0;
    ChurnStats churn{};
    int max_retries_allowed = 0;
    int end_level = 0;
    std::size_t end_queued = 0;
    bool mappings_intact = true;
    bool no_wedged_vssd = true;
    bool removed_quiesced = true;
};

/** Walk every surviving tenant's map: each mapped LPA must resolve to
 *  a valid, non-retired page whose reverse map points straight back. */
bool
verifyMappings(Testbed &tb)
{
    const auto &geo = tb.device().geometry();
    for (auto *v : tb.vssds().active()) {
        Ftl &ftl = v->ftl();
        for (Lpa lpa = 0; lpa < ftl.logicalPages(); ++lpa) {
            const Ppa ppa = ftl.lookup(lpa);
            if (ppa == kNoPpa)
                continue;
            const FlashBlock &blk = tb.device().blockOf(ppa);
            if (blk.state == BlockState::kRetired)
                return false;
            if (!blk.valid[geo.pageOf(ppa)])
                return false;
            const RmapEntry &r = tb.device().rmap(ppa);
            if (r.data_vssd != v->id() || r.lpa != lpa)
                return false;
        }
    }
    return true;
}

ChurnEvent
arrival(SimTime at, WorkloadKind kind, std::uint32_t channels,
        const SsdGeometry &geo, SimTime slo)
{
    ChurnEvent ev;
    ev.at = at;
    ev.kind = ChurnEvent::Kind::kArrive;
    ev.workload = kind;
    ev.channels = channels;
    ev.quota_blocks = ChannelAllocator::quotaForChannels(geo, channels);
    ev.declared_mbps = geo.channelBandwidthMBps() * channels;
    ev.slo = slo;
    return ev;
}

ChurnEvent
removal(SimTime at, VssdId id)
{
    ChurnEvent ev;
    ev.at = at;
    ev.kind = ChurnEvent::Kind::kRemove;
    ev.remove_id = id;
    return ev;
}

Outcome
run(const Cell &cell, const Shape &shape)
{
    ExperimentSpec spec = makeSpec(
        {WorkloadKind::kVdiWeb, WorkloadKind::kTeraSort},
        PolicyKind::kFleetIo);
    spec.opts.faults = cell.faults;
    spec.warm_run = shape.warm;
    spec.measure = shape.measure;
    const auto &geo = spec.opts.geo;

    std::vector<SimTime> slos;
    for (WorkloadKind k : spec.workloads)
        slos.push_back(calibratedSlo(k, spec.workloads.size(),
                                     spec.opts));
    const SimTime arrive_slo =
        calibratedSlo(WorkloadKind::kYcsbB, spec.workloads.size(),
                      spec.opts);

    if (cell.churn) {
        // The device starts fully carved (2 x 8 channels), so every
        // arrival must wait for a removal's drain-then-scrub to return
        // channels — that is what exercises the backoff path.
        auto &sched = spec.opts.churn.schedule;
        if (cell.burst) {
            // Storm: one departure, then four near-simultaneous
            // arrivals racing for its 8 channels. Kinds alternate so
            // the winners include a bandwidth-intensive tenant and
            // device utilization survives the hog's departure.
            sched.push_back(removal(msec(200), VssdId(1)));
            for (int i = 0; i < 4; ++i) {
                const WorkloadKind k = i % 2 == 0
                                           ? WorkloadKind::kMlPrep
                                           : WorkloadKind::kYcsbB;
                sched.push_back(arrival(msec(300 + 10 * i), k, 4, geo,
                                        arrive_slo));
            }
        } else {
            // Spaced: departure, two arrivals, second departure.
            sched.push_back(removal(msec(200), VssdId(1)));
            sched.push_back(arrival(msec(400), WorkloadKind::kMlPrep, 4,
                                    geo, arrive_slo));
            sched.push_back(arrival(sec(2), WorkloadKind::kYcsbB, 4,
                                    geo, arrive_slo));
        }
        auto &el = spec.opts.churn.elastic;
        el.pressure_interval = spec.opts.window;
        // Retries must fully resolve (admit or reject) within the
        // measured region: 8 attempts at 100 ms doubling capped at
        // 800 ms span ~4.7 s, inside even the smoke measurement.
        el.admission.backoff_base = msec(100);
        el.admission.backoff_cap = msec(800);
        el.admission.max_retries = 8;
        if (cell.aggressive_tiers) {
            el.degrade_slo_1 = 0.01;
            el.degrade_slo_2 = 0.05;
            el.degrade_slo_3 = 0.20;
            el.recover_evals = 5;
        }
    }

    Testbed tb(spec.opts);
    FleetIoPolicy::Variant var;
    var.train_windows = shape.train_windows;
    FleetIoPolicy policy(var);
    policy.setup(tb, spec.workloads, slos);
    tb.warmupFill();
    tb.startWorkloads();
    tb.run(spec.warm_run);
    policy.prepare(tb);
    policy.beforeMeasure(tb);
    tb.beginMeasurement();
    tb.startChurn();
    tb.run(spec.measure);
    tb.endMeasurement();

    Outcome out;
    out.util = tb.avgUtilization();
    for (auto *v : tb.vssds().active()) {
        out.agg_bw += v->bandwidth().totalMBps(spec.measure);
        out.slo_vio += v->latency().sloViolation();
    }
    if (!tb.vssds().active().empty())
        out.slo_vio /= double(tb.vssds().active().size());

    out.mappings_intact = verifyMappings(tb);
    for (auto *v : tb.vssds().active()) {
        if (v->ftl().freeQuotaRatio() <= 0.0 && v->ftl().needsGc() &&
            !v->gc().active()) {
            out.no_wedged_vssd = false;
        }
    }
    if (ElasticTenancyManager *el = tb.elastic()) {
        out.churn = el->stats();
        out.max_retries_allowed =
            el->config().admission.max_retries;
        out.end_level = el->pressureLevel();
        out.end_queued = el->queuedArrivals();
        // Every removed tenant must be fully quiesced: no request of
        // its in flight anywhere in the scheduler.
        for (VssdId id = 0; id < VssdId(tb.vssds().size()); ++id) {
            if (!tb.vssds().alive(id) &&
                !tb.scheduler().tenantQuiesced(id)) {
                out.removed_quiesced = false;
            }
        }
    }
    return out;
}

bool
sameOutcome(const Outcome &a, const Outcome &b)
{
    return a.util == b.util && a.agg_bw == b.agg_bw &&
           a.slo_vio == b.slo_vio &&
           a.churn.arrivals == b.churn.arrivals &&
           a.churn.admitted == b.churn.admitted &&
           a.churn.retries == b.churn.retries &&
           a.churn.rejected == b.churn.rejected &&
           a.churn.removals_completed == b.churn.removals_completed &&
           a.churn.tier_stepdowns == b.churn.tier_stepdowns &&
           a.churn.tier_recoveries == b.churn.tier_recoveries;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    banner("Tenant churn: hot add/remove + admission control + G-state "
           "degradation under faults");
    BenchReport report("tenant_churn");
    report.setJobs(benchJobs());

    Shape shape;
    if (smoke) {
        shape.train_windows = 80;
        shape.warm = sec(1);
        shape.measure = sec(6);
    } else {
        shape.measure = measureDuration();
    }

    FaultConfig med;
    med.read_retry_prob = 1e-2;
    med.program_fail_prob = 1e-3;
    med.erase_fail_prob = 1e-2;
    med.chip_slowdown_prob = 1e-3;
    med.wear_error_growth = 1e-5;

    std::vector<Cell> cells;
    cells.push_back({"static", false, false, false, {}});
    cells.push_back({"churn", true, false, false, {}});
    cells.push_back({"churn+faults", true, false, false, med});
    cells.push_back({"storm+tiers", true, true, true, {}});
    cells.push_back({"storm+tiers+faults", true, true, true, med});

    auto outs = parallelMap(
        cells, [&shape](const Cell &c) { return run(c, shape); });

    // Determinism arm: the same churn cell a second time.
    const Outcome rerun = run(cells[1], shape);
    const bool deterministic = sameOutcome(outs[1], rerun);

    Table t({"cell", "util", "BW (MB/s)", "SLO vio", "admit",
             "retry", "reject", "removed", "stepdn", "recov"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Outcome &o = outs[i];
        t.addRow({cells[i].label, fmtPercent(o.util),
                  fmtDouble(o.agg_bw, 1), fmtPercent(o.slo_vio),
                  std::to_string(o.churn.admitted),
                  std::to_string(o.churn.retries),
                  std::to_string(o.churn.rejected),
                  std::to_string(o.churn.removals_completed) + "/" +
                      std::to_string(o.churn.removals_requested),
                  std::to_string(o.churn.tier_stepdowns),
                  std::to_string(o.churn.tier_recoveries)});
    }
    t.print(std::cout);
    std::cout << '\n';

    const double base_util = outs[0].util;
    bool ok = true;
    auto verdict = [&ok](bool pass, const std::string &what) {
        std::cout << (pass ? "PASS: " : "FAIL: ") << what << '\n';
        ok = ok && pass;
    };

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Outcome &o = outs[i];
        const std::string &l = cells[i].label;
        verdict(o.mappings_intact, l + ": LPA mappings intact");
        verdict(o.no_wedged_vssd, l + ": no vSSD wedged");
        if (!cells[i].churn)
            continue;
        verdict(o.churn.removals_completed == o.churn.removals_requested,
                l + ": all removals drained, scrubbed, reclaimed");
        verdict(o.removed_quiesced,
                l + ": removed tenants fully quiesced");
        verdict(o.churn.admitted >= 1,
                l + ": at least one arrival admitted");
        verdict(o.churn.max_attempts_observed <= o.max_retries_allowed,
                l + ": retry attempts within the bounded budget");
        verdict(o.end_queued == 0,
                l + ": no arrival left stranded in the retry queue");
        verdict(o.churn.tier_recoveries <= o.churn.tier_stepdowns &&
                    o.end_level >= 0 && o.end_level <= 3,
                l + ": G-state ladder consistent");
        verdict(o.util >= 0.2 * base_util,
                l + ": utilization above the churn floor");
    }
    // Degradation engagement: the aggressive-threshold storm cells sit
    // at a 1 % mean-violation trigger; a burst of cold arrivals on top
    // of a draining departure must push past it.
    verdict(outs[3].churn.tier_stepdowns >= 1,
            "storm+tiers: SLO-tier degradation engaged");
    verdict(deterministic, "identical churn cell reruns bit-identically");

    std::cout << "\nExpected shape: churn cells admit arrivals only "
                 "after departures free channels (retries > 0), "
                 "removals always complete, and storm cells engage the "
                 "G-state ladder while utilization stays above the "
                 "floor.\n";

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Outcome &o = outs[i];
        report.addCell(cells[i].label,
                       {{"avg_util", o.util},
                        {"agg_bw_mbps", o.agg_bw},
                        {"slo_violation", o.slo_vio},
                        {"churn_admitted", double(o.churn.admitted)},
                        {"churn_retries", double(o.churn.retries)},
                        {"churn_rejected", double(o.churn.rejected)},
                        {"churn_removals",
                         double(o.churn.removals_completed)},
                        {"tier_stepdowns",
                         double(o.churn.tier_stepdowns)},
                        {"mappings_intact",
                         o.mappings_intact ? 1.0 : 0.0}});
    }
    report.setMetric("verdicts_ok", ok ? 1.0 : 0.0);
    const int regress = report.finish(argc, argv);
    return ok ? regress : 1;
}
