/**
 * @file
 * Shared scaffolding for the figure-reproduction benches: the paper's
 * workload pairs (§4.2) and mixes (Table 5), spec construction, and
 * normalized-metric helpers.
 *
 * Scale note (printed by every bench): the device is the benchGeometry
 * scale-down of Table 3 (identical channel/chip/page ratios and
 * per-channel bandwidth, fewer blocks) and the 2 s decision window is
 * compressed to 100 ms. Decision dynamics depend on windows, not wall
 * seconds, so the paper's *shapes* are preserved; absolute numbers are
 * not expected to match a physical board.
 */
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/harness/experiment.h"
#include "src/harness/parallel.h"
#include "src/harness/reporting.h"

namespace fleetio::bench {

/** The six §4.2 collocation pairs (LS + BI). */
inline std::vector<std::vector<WorkloadKind>>
evaluationPairs()
{
    using K = WorkloadKind;
    return {{K::kVdiWeb, K::kTeraSort}, {K::kVdiWeb, K::kMlPrep},
            {K::kVdiWeb, K::kPageRank}, {K::kYcsbB, K::kTeraSort},
            {K::kYcsbB, K::kMlPrep},    {K::kYcsbB, K::kPageRank}};
}

/** Human label like "VDI-Web+TeraSort". */
inline std::string
pairLabel(const std::vector<WorkloadKind> &pair)
{
    std::string s;
    for (std::size_t i = 0; i < pair.size(); ++i) {
        if (i)
            s += "+";
        s += workloadName(pair[i]);
    }
    return s;
}

/** Table 5 scalability mixes. */
struct Mix
{
    std::string label;
    std::vector<WorkloadKind> workloads;
};

inline std::vector<Mix>
scalabilityMixes()
{
    using K = WorkloadKind;
    return {
        {"mix1 (2 vSSDs)", {K::kVdiWeb, K::kTeraSort}},
        {"mix2 (2 vSSDs)", {K::kYcsbB, K::kPageRank}},
        {"mix3 (4 vSSDs)",
         {K::kVdiWeb, K::kVdiWeb, K::kTeraSort, K::kTeraSort}},
        {"mix4 (4 vSSDs)",
         {K::kVdiWeb, K::kYcsbB, K::kTeraSort, K::kPageRank}},
        {"mix5 (8 vSSDs)",
         {K::kVdiWeb, K::kVdiWeb, K::kVdiWeb, K::kVdiWeb, K::kTeraSort,
          K::kTeraSort, K::kPageRank, K::kMlPrep}},
    };
}

/** Policies of the main comparison, in the paper's plotting order. */
inline std::vector<PolicyKind>
mainPolicies()
{
    return {PolicyKind::kHardwareIsolation, PolicyKind::kSsdKeeper,
            PolicyKind::kAdaptive, PolicyKind::kSoftwareIsolation,
            PolicyKind::kFleetIo};
}

/**
 * Measurement seconds (override with FLEETIO_BENCH_MEASURE_SEC).
 * A value that is not a positive integer (garbage, zero, negative,
 * absurdly large) would otherwise silently yield a 0 s measurement and
 * all-zero metrics; such values fall back to the default with a
 * warning instead.
 */
inline SimTime
measureDuration()
{
    constexpr std::uint64_t kDefaultSec = 18;
    const char *env = std::getenv("FLEETIO_BENCH_MEASURE_SEC");
    if (!env)
        return sec(kDefaultSec);
    // -1 is outside [1, 86400], so it doubles as the rejection signal.
    const long v = parseLongStrict(env, -1, 1, 86400);
    if (v < 0) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::cerr << "warning: FLEETIO_BENCH_MEASURE_SEC=\"" << env
                      << "\" is not a valid duration (want integer "
                         "seconds in [1, 86400]); using "
                      << kDefaultSec << " s\n";
        }
        return sec(kDefaultSec);
    }
    return sec(std::uint64_t(v));
}

/** Standard spec for a workload set under a policy. */
inline ExperimentSpec
makeSpec(const std::vector<WorkloadKind> &workloads, PolicyKind policy)
{
    ExperimentSpec spec;
    spec.workloads = workloads;
    spec.policy = policy;
    spec.opts.window = msec(100);
    spec.warm_run = sec(2);
    spec.measure = measureDuration();
    return spec;
}

/** Banner with the scale-down disclaimer. */
inline void
banner(const std::string &title)
{
    std::cout << "==================================================\n"
              << title << "\n"
              << "Device: Table-3 geometry scaled down (benchGeometry:"
                 " 16 ch x 4 chips, 2 MB blocks, 4 GB);\n"
              << "decision window 2 s -> 100 ms; measure "
              << toSeconds(measureDuration()) << " s per cell; "
              << benchJobs()
              << " parallel jobs (FLEETIO_BENCH_JOBS).\n"
              << "Shapes (orderings, ratios) are the reproduction "
                 "target, not absolute board numbers.\n"
              << "==================================================\n\n";
}

}  // namespace fleetio::bench
